(** Mutant-kill ranking of mined invariants.

    The scoring loop closes the paper's argument: an invariant mined
    from the software-simulation traces is re-synthesized as an
    in-circuit assertion and judged by the translation faults it
    actually catches in the cycle-accurate circuit — with its EP2S180
    area and fmax price printed next to the kill count, the same
    cost/coverage trade the paper's tables make for hand-written
    assertions. *)

module Driver = Core.Driver
module Fault = Faults.Fault

type config = {
  strategy : string * Driver.strategy;
  max_candidates : int;
  max_mutants : int option;
  budget : int option;
  watchdog : int option;
  jobs : int option;
      (** worker domains for each ranking sweep; [None] =
          {!Exec.Pool.default_jobs}, [Some 1] = serial.  Candidates are
          scored serially — parallelism lives inside each campaign
          sweep, so domains never nest. *)
}

let default_config =
  {
    strategy = ("parallelized", Driver.parallelized);
    max_candidates = 12;
    max_mutants = None;
    budget = None;
    watchdog = None;
    jobs = None;
  }

type scored = {
  candidate : Infer.candidate;
  kills : int;
  marginal : int;
  newly_detected : string list;
  mutants : int;
  alut_delta : int;
  reg_delta : int;
  fmax_delta_mhz : float;
  source : string;
}

type result = {
  rname : string;
  strategy_name : string;
  stimuli : string list;
  inferred : int;
  capped : int;
  static_proved : int;
  survivors : int;
  mutants : int;
  base_detected : int;
  scored : scored list;
}

(* Faults a campaign sweep detected, as stable description strings
   (ordinals are enumerated on the baseline IR, so descriptions align
   between the base and instrumented sweeps). *)
let detected_set (r : Campaign.report) =
  List.filter_map
    (fun (run : Campaign.run) ->
      if Campaign.detected run.Campaign.outcome then
        Some (Fault.describe run.Campaign.fault)
      else None)
    r.Campaign.runs
  |> List.sort_uniq compare

let mine ?(config = default_config) ?progress ~name ?options (prog : Front.Ast.program) :
    result =
  let base_options =
    match options with Some o -> o | None -> Trace.auto_options prog
  in
  let stimuli = Trace.variants base_options in
  let traces = Trace.collect prog stimuli in
  if not (List.exists (fun (t : Trace.run_trace) -> t.Trace.tr_stimulus = "base") traces)
  then
    invalid_arg
      (Printf.sprintf
         "Mine: %s does not pass software simulation under the base stimulus (check \
          feeds/params)"
         name);
  let passing =
    List.filter
      (fun (st : Trace.stimulus) ->
        List.exists (fun (t : Trace.run_trace) -> t.Trace.tr_stimulus = st.Trace.label) traces)
      stimuli
  in
  let inferred = Infer.infer prog traces in
  let kept = Infer.cap_round_robin config.max_candidates inferred in
  let survivors = Infer.survivors prog ~stimuli:passing kept in
  (* Static pre-filter: a candidate the abstract interpreter already
     proves is the hardware twin of an assertion that can never fire on
     correct silicon for a *trivial* reason (e.g. subsumed by the loop
     bounds) — spending a campaign sweep on it buys nothing a cheaper
     proved hand-written assertion would not.  Injected copies are
     identified by (proc, text) multiset difference against the base
     program, since injection pretty-prints and re-parses (locations
     shift). *)
  let base_assert_counts =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (p : Front.Ast.proc) ->
        List.iter
          (fun (_, _, text) ->
            let k = (p.Front.Ast.pname, text) in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          (Front.Ast.assertions_of p.Front.Ast.body))
      prog.Front.Ast.procs;
    tbl
  in
  let statically_proved (c : Infer.candidate) =
    match Infer.inject prog [ c ] with
    | None | (exception _) -> false
    | Some (_, p') ->
        let remaining = Hashtbl.copy base_assert_counts in
        let injected =
          List.filter
            (fun (v : Analysis.Absint.verdict) ->
              let k = (v.Analysis.Absint.vproc, v.Analysis.Absint.vtext) in
              match Hashtbl.find_opt remaining k with
              | Some n when n > 0 ->
                  Hashtbl.replace remaining k (n - 1);
                  false
              | _ -> true)
            (Analysis.Absint.analyze p').Analysis.Absint.verdicts
        in
        injected <> []
        && List.for_all
             (fun (v : Analysis.Absint.verdict) ->
               v.Analysis.Absint.vclass = Analysis.Absint.Proved)
             injected
  in
  let static_dropped, survivors = List.partition statically_proved survivors in
  let ccfg =
    {
      Campaign.mode = Campaign.default_config.Campaign.mode;
      strategies = [ config.strategy ];
      budget = config.budget;
      watchdog = config.watchdog;
      max_mutants = config.max_mutants;
      jobs = config.jobs;
      prune_hangs = Campaign.default_config.Campaign.prune_hangs;
    }
  in
  let sweep p nm =
    Campaign.run ~config:ccfg
      [ { Campaign.wname = nm; program = p; options = base_options } ]
  in
  let base_report = sweep prog name in
  let base_set = detected_set base_report in
  let base_c = Exec.Cache.compile ~strategy:(snd config.strategy) prog in
  let scored =
    List.filter_map
      (fun (c : Infer.candidate) ->
        match Infer.inject prog [ c ] with
        | None -> None
        | Some (src, p') -> (
            match
              let rep = sweep p' (name ^ "+" ^ string_of_int c.Infer.uid) in
              let comp = Exec.Cache.compile ~strategy:(snd config.strategy) p' in
              (rep, comp)
            with
            | rep, comp ->
                let det = detected_set rep in
                let newly = List.filter (fun d -> not (List.mem d base_set)) det in
                let s =
                  {
                    candidate = c;
                    kills = List.length det;
                    marginal = List.length newly;
                    newly_detected = newly;
                    mutants = rep.Campaign.site_count;
                    alut_delta =
                      comp.Driver.area.Rtl.Area.aluts
                      - base_c.Driver.area.Rtl.Area.aluts;
                    reg_delta =
                      comp.Driver.area.Rtl.Area.registers
                      - base_c.Driver.area.Rtl.Area.registers;
                    fmax_delta_mhz =
                      comp.Driver.timing.Rtl.Timing.fmax_mhz
                      -. base_c.Driver.timing.Rtl.Timing.fmax_mhz;
                    source = src;
                  }
                in
                (match progress with Some f -> f s | None -> ());
                Some s
            | exception _ -> None))
      survivors
  in
  let ranked =
    List.sort
      (fun a b ->
        if a.marginal <> b.marginal then compare b.marginal a.marginal
        else if a.kills <> b.kills then compare b.kills a.kills
        else
          let aa = a.alut_delta + a.reg_delta and bb = b.alut_delta + b.reg_delta in
          if aa <> bb then compare aa bb
          else compare a.candidate.Infer.uid b.candidate.Infer.uid)
      scored
  in
  {
    rname = name;
    strategy_name = fst config.strategy;
    stimuli = List.map (fun (t : Trace.run_trace) -> t.Trace.tr_stimulus) traces;
    inferred = List.length inferred;
    capped = List.length kept;
    static_proved = List.length static_dropped;
    survivors = List.length scored;
    mutants = base_report.Campaign.site_count;
    base_detected = List.length base_set;
    scored = ranked;
  }

let take n l =
  let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
  go n l

let top_candidates ?(top = max_int) (r : result) =
  List.map (fun s -> s.candidate) (take top r.scored)

(* --- rendering ----------------------------------------------------------- *)

let render ?(top = max_int) (r : result) : string =
  let b = Buffer.create 2048 in
  let p fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
  in
  p "=== assertion mining: %s (strategy %s) ===" r.rname r.strategy_name;
  p "traces: %d passing stimuli (%s)" (List.length r.stimuli)
    (String.concat ", " r.stimuli);
  p "candidates: %d inferred, %d kept, %d statically proved (dropped), %d survive \
     injection + falsification"
    r.inferred r.capped r.static_proved r.survivors;
  p "fault sites: %d mutants; base program detects %d" r.mutants r.base_detected;
  p "";
  p "%4s %5s %4s %8s %8s %10s  %s" "rank" "kills" "new" "aluts" "regs" "fmax(MHz)"
    "invariant";
  List.iteri
    (fun i s ->
      p "%4d %5d %4d %+8d %+8d %+10.1f  %s  [%s]" (i + 1) s.kills s.marginal
        s.alut_delta s.reg_delta s.fmax_delta_mhz
        (Infer.describe s.candidate)
        (Infer.template_kind s.candidate.Infer.template);
      List.iter (fun d -> p "%38s newly detects: %s" "" d) s.newly_detected)
    (take top r.scored);
  if r.scored = [] then p "(no candidate survived)";
  Buffer.contents b

let json_of ?(top = max_int) (r : result) : Json.t =
  Json.Obj
    [
      ("name", Json.Str r.rname);
      ("strategy", Json.Str r.strategy_name);
      ("stimuli", Json.list Json.str r.stimuli);
      ("inferred", Json.int r.inferred);
      ("kept", Json.int r.capped);
      ("static_proved", Json.int r.static_proved);
      ("survivors", Json.int r.survivors);
      ("mutants", Json.int r.mutants);
      ("base_detected", Json.int r.base_detected);
      ( "ranking",
        Json.list
          (fun s ->
            Json.Obj
              [
                ("uid", Json.int s.candidate.Infer.uid);
                ("invariant", Json.Str (Infer.describe s.candidate));
                ("kind", Json.Str (Infer.template_kind s.candidate.Infer.template));
                ("kills", Json.int s.kills);
                ("marginal", Json.int s.marginal);
                ("newly_detected", Json.list Json.str s.newly_detected);
                ("mutants", Json.int s.mutants);
                ("alut_delta", Json.int s.alut_delta);
                ("reg_delta", Json.int s.reg_delta);
                ("fmax_delta_mhz", Json.float s.fmax_delta_mhz);
              ])
          (take top r.scored) );
    ]
