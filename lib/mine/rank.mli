(** Mutant-kill ranking of mined invariants (the selection half).

    A mined invariant is only worth its area if it detects translation
    faults the existing assertions miss.  Each surviving candidate is
    injected on its own, compiled under the chosen synthesis strategy,
    and swept through the fault-injection campaign; candidates are
    ranked by newly-detected faults (faults the uninstrumented program
    misses), then total kills, then area cost. *)

type config = {
  strategy : string * Core.Driver.strategy;
      (** synthesis strategy candidates are compiled and swept under *)
  max_candidates : int;  (** cap after inference, round-robin per kind *)
  max_mutants : int option;  (** per-sweep fault-site cap *)
  budget : int option;  (** per-mutant cycle budget (None = auto) *)
  watchdog : int option;  (** live-lock window (None = auto) *)
  jobs : int option;
      (** worker domains for each ranking sweep; [None] =
          {!Exec.Pool.default_jobs}, [Some 1] = serial.  Candidates are
          scored serially — parallelism lives inside each campaign
          sweep, so domains never nest. *)
}

(** parallelized strategy, 12 candidates, no mutant cap, auto jobs. *)
val default_config : config

type scored = {
  candidate : Infer.candidate;
  kills : int;  (** faults detected with this invariant injected *)
  marginal : int;  (** of those, faults the base program does not detect *)
  newly_detected : string list;  (** {!Faults.Fault.describe} of each *)
  mutants : int;  (** fault sites swept *)
  alut_delta : int;  (** ALUT cost of the synthesized checker *)
  reg_delta : int;
  fmax_delta_mhz : float;  (** negative = the checker slowed the clock *)
  source : string;  (** the singly-instrumented InCA-C source *)
}

type result = {
  rname : string;
  strategy_name : string;
  stimuli : string list;  (** labels of the passing trace stimuli *)
  inferred : int;  (** candidates instantiated from the traces *)
  capped : int;  (** after [max_candidates] *)
  static_proved : int;
      (** dropped before scoring: the {!Analysis.Absint} verifier proves
          the injected assertion from the program text alone, so its
          fault-detection sweep is not worth running *)
  survivors : int;  (** after injection + falsification *)
  mutants : int;  (** fault sites of the base sweep *)
  base_detected : int;  (** faults the uninstrumented program detects *)
  scored : scored list;  (** every survivor, ranked best-first *)
}

(** Trace, infer, filter, score, rank.  [options] is the base stimulus
    (defaults to {!Trace.auto_options}); it must pass software
    simulation, else [Invalid_argument] is raised.  [progress] (if
    given) is called once per scored candidate, on the calling domain,
    in candidate order (before ranking).

    Ranking is deterministic: marginal kills desc, total kills desc,
    area delta asc, uid asc. *)
val mine :
  ?config:config ->
  ?progress:(scored -> unit) ->
  name:string ->
  ?options:Core.Driver.sim_options ->
  Front.Ast.program ->
  result

(** The [top] best candidates (all survivors if [top] exceeds them). *)
val top_candidates : ?top:int -> result -> Infer.candidate list

(** Human-readable ranking table, trimmed to [top] rows. *)
val render : ?top:int -> result -> string

(** The report as a JSON payload (the [inca mine] entry in a
    {!Core.Report} envelope), trimmed to [top] ranking rows. *)
val json_of : ?top:int -> result -> Json.t
