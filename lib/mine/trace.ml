(** Trace recording for assertion mining (the Daikon-style front half).

    Mining learns from the *software-simulation* path — the same
    desktop-simulation runs an Impulse-C developer already has — so the
    candidate invariants describe behaviour the developer believes
    correct.  The value comes later, in circuit: a mined invariant
    synthesized as an in-circuit assertion catches translation faults
    the software path never sees (paper, Section 5.1). *)

module Ast = Front.Ast
module Driver = Core.Driver

type stimulus = {
  label : string;
  options : Driver.sim_options;
}

type run_trace = {
  tr_stimulus : string;
  tr_options : Driver.sim_options;
  events : Interp.obs_event list;
}

(* --- stimulus derivation ------------------------------------------------- *)

(* Same policy as [inca campaign] without flags: feed every purely-read
   stream a ramp, drain every purely-written stream, and default every
   process parameter to 32 (sized to the ramp). *)
let auto_options ?(feeds = []) ?(drains = []) ?(params = []) (prog : Ast.program) :
    Driver.sim_options =
  let reads = ref [] and writes = ref [] in
  List.iter
    (fun (p : Ast.proc) ->
      Ast.iter_stmts
        (fun st ->
          match st.Ast.s with
          | Ast.Stream_read (_, s) ->
              if not (List.mem s !reads) then reads := s :: !reads
          | Ast.Stream_write (s, _) ->
              if not (List.mem s !writes) then writes := s :: !writes
          | _ -> ())
        p.Ast.body)
    prog.Ast.procs;
  let feeds =
    if feeds <> [] then feeds
    else
      List.filter_map
        (fun s ->
          if List.mem s !writes then None
          else Some (s, List.init 48 (fun i -> Int64.of_int (i + 1))))
        (List.rev !reads)
  in
  let drains =
    if drains <> [] then drains
    else List.filter (fun s -> not (List.mem s !reads)) (List.rev !writes)
  in
  let params =
    List.map
      (fun (p : Ast.proc) ->
        let given = try List.assoc p.Ast.pname params with Not_found -> [] in
        ( p.Ast.pname,
          List.map
            (fun (n, _) -> (n, try List.assoc n given with Not_found -> 32L))
            p.Ast.params ))
      (Driver.hw_procs prog)
  in
  { Driver.default_sim_options with Driver.feeds; drains; params }

let map_feeds f (o : Driver.sim_options) =
  { o with Driver.feeds = List.map (fun (s, vs) -> (s, f vs)) o.Driver.feeds }

(* Deterministic transformations of the base feeds.  The family is
   deliberately varied enough to falsify stimulus-specific accidents
   (exact input constants, input orderings) while preserving genuine
   structural invariants (trip counts, output cardinalities).  Variants
   whose run fails an existing assertion are simply dropped by
   [collect]. *)
let variants (base : Driver.sim_options) : stimulus list =
  [
    { label = "base"; options = base };
    { label = "reversed"; options = map_feeds List.rev base };
    { label = "shifted"; options = map_feeds (List.map (Int64.add 7L)) base };
    { label = "scaled"; options = map_feeds (List.map (Int64.mul 3L)) base };
    { label = "halved"; options = map_feeds (List.map (fun v -> Int64.div v 2L)) base };
  ]

(* --- collection ---------------------------------------------------------- *)

let collect (prog : Ast.program) (stimuli : stimulus list) : run_trace list =
  (* One baseline compile serves every stimulus: [software_sim] runs the
     *source* program (assertions intact), only the options differ. *)
  let c = Driver.compile ~strategy:Driver.baseline prog in
  List.filter_map
    (fun st ->
      let events = ref [] in
      match
        Driver.software_sim ~options:st.options
          ~observer:(fun e -> events := e :: !events)
          c
      with
      | r when Interp.ok r ->
          Some
            { tr_stimulus = st.label; tr_options = st.options; events = List.rev !events }
      | _ -> None
      | exception _ -> None)
    stimuli
