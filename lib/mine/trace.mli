(** Trace recording for assertion mining (the Daikon-style front half).

    Runs a program repeatedly under the software-simulation path
    ({!Core.Driver.software_sim}) with the {!Interp} observer hook
    installed, across a family of deterministically derived stimuli, and
    keeps the observation streams of the runs that pass.  {!Infer} turns
    the merged traces into candidate invariants. *)

(** One named testbench: a label plus the feeds/drains/params to run. *)
type stimulus = {
  label : string;
  options : Core.Driver.sim_options;
}

(** The observations of one passing run, in emission order. *)
type run_trace = {
  tr_stimulus : string;            (** label of the stimulus that produced it *)
  tr_options : Core.Driver.sim_options;
      (** the stimulus itself — {!Infer} seeds process parameters from
          it so invariants can relate variables to parameters *)
  events : Interp.obs_event list;
}

(** Derive a usable testbench from the program alone (same policy as
    [inca campaign] without flags): feed every purely-read stream the
    ramp 1..48, drain every purely-written stream, default every
    process parameter to 32.  Explicit [feeds]/[drains]/[params]
    override the derived ones. *)
val auto_options :
  ?feeds:(string * int64 list) list ->
  ?drains:string list ->
  ?params:(string * (string * int64) list) list ->
  Front.Ast.program ->
  Core.Driver.sim_options

(** The stimulus family mined over: the base testbench plus
    deterministic feed transformations (reversed, shifted, scaled,
    halved).  The base stimulus is always first and labelled "base". *)
val variants : Core.Driver.sim_options -> stimulus list

(** Run every stimulus under software simulation with the observer
    installed; return the traces of the runs that completed with no
    assertion failure.  Failing or crashing runs are dropped — mining
    only learns from passing behaviour. *)
val collect : Front.Ast.program -> stimulus list -> run_trace list
