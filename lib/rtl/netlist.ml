(** Structural register-transfer netlist.

    The netlist is the contract between high-level synthesis and the
    device model: {!Gen} lowers an FSMD into these primitives, and
    {!Device}'s area/timing estimators count them.  It is deliberately
    coarse (one primitive per functional unit, register bank, RAM, FIFO,
    FSM) — the granularity Quartus' fitter report aggregates to in the
    paper's Tables 1 and 2. *)

open Front.Ast

type fu_prim = {
  fu_op : [ `Bin of binop | `Un of unop ];
  fu_width : int;
  fu_count : int;       (** identical units instantiated *)
}

type prim =
  | Fu of fu_prim
  | Regbank of { width : int; count : int; purpose : string }
  | Mux of { width : int; ways : int; count : int }
  | Fsm of { states : int; transitions : int }
  | Bram of { width : int; depth : int; ports : int; name : string }
  | Fifo of { width : int; depth : int; name : string }
  | Pipe_ctrl of { ii : int; depth : int }
      (** issue counter, stage-valid chain, stall logic of one pipelined loop *)

type module_ = {
  mod_name : string;
  prims : prim list;
}

type t = {
  top_name : string;
  modules : module_ list;   (** one per hardware process (+ checkers) *)
  fifos : prim list;        (** program-level stream FIFOs *)
}

let count_prims (m : module_) = List.length m.prims

(** Fold over every primitive in the design, FIFOs included. *)
let fold f acc (d : t) =
  let acc = List.fold_left (fun acc m -> List.fold_left f acc m.prims) acc d.modules in
  List.fold_left f acc d.fifos

type summary = {
  n_modules : int;
  n_prims : int;
  n_fus : int;          (** functional units, multiplicity included *)
  reg_bits : int;       (** architectural register bits (banks) *)
  fsm_states : int;     (** summed over all controllers *)
  bram_bits : int;
  n_fifos : int;
  fifo_bits : int;
  n_pipes : int;
}

(** Size the design for reporting: how much sequential state the model
    checker must encode, and how much combinational structure sits in
    front of it.  [state_bits] below is the quantity that bounds BMC
    unrolling cost per cycle. *)
let summarize (d : t) : summary =
  let init =
    { n_modules = List.length d.modules; n_prims = 0; n_fus = 0; reg_bits = 0;
      fsm_states = 0; bram_bits = 0; n_fifos = 0; fifo_bits = 0; n_pipes = 0 }
  in
  fold
    (fun s p ->
      let s = { s with n_prims = s.n_prims + 1 } in
      match p with
      | Fu f -> { s with n_fus = s.n_fus + f.fu_count }
      | Regbank r -> { s with reg_bits = s.reg_bits + (r.width * r.count) }
      | Mux _ -> s
      | Fsm f -> { s with fsm_states = s.fsm_states + f.states }
      | Bram b -> { s with bram_bits = s.bram_bits + (b.width * b.depth) }
      | Fifo f ->
          { s with n_fifos = s.n_fifos + 1;
            fifo_bits = s.fifo_bits + (f.width * f.depth) }
      | Pipe_ctrl _ -> { s with n_pipes = s.n_pipes + 1 })
    init d

(* ceil(log2 n) for state encoding; 0 states still needs no bits *)
let bits_for n =
  if n <= 1 then 0
  else
    let rec go b c = if c >= n then b else go (b + 1) (c * 2) in
    go 1 2

(** Total sequential state bits of the design: registers, FSM state
    encodings, FIFO payloads and occupancy counters, BRAM contents. *)
let state_bits (d : t) : int =
  fold
    (fun acc p ->
      match p with
      | Regbank r -> acc + (r.width * r.count)
      | Fsm f -> acc + bits_for f.states
      | Bram b -> acc + (b.width * b.depth)
      | Fifo f -> acc + (f.width * f.depth) + bits_for (f.depth + 1)
      | Fu _ | Mux _ -> acc
      | Pipe_ctrl p -> acc + p.depth (* one valid bit per stage *))
    0 d
