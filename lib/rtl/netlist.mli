(** Structural register-transfer netlist: the contract between
    high-level synthesis and the device model.  {!Gen} lowers an FSMD
    into these primitives; {!Area} and {!Timing} count them.  The
    granularity is deliberately coarse — what Quartus' fitter report
    aggregates to in the paper's Tables 1 and 2. *)

type fu_prim = {
  fu_op : [ `Bin of Front.Ast.binop | `Un of Front.Ast.unop ];
  fu_width : int;
  fu_count : int;  (** identical units instantiated *)
}

type prim =
  | Fu of fu_prim
  | Regbank of { width : int; count : int; purpose : string }
  | Mux of { width : int; ways : int; count : int }
  | Fsm of { states : int; transitions : int }
  | Bram of { width : int; depth : int; ports : int; name : string }
  | Fifo of { width : int; depth : int; name : string }
  | Pipe_ctrl of { ii : int; depth : int }
      (** issue counter, stage-valid chain, stall logic of one pipelined loop *)

type module_ = {
  mod_name : string;  (** one per hardware process (or checker) *)
  prims : prim list;
}

type t = {
  top_name : string;
  modules : module_ list;
  fifos : prim list;  (** program-level stream FIFOs *)
}

val count_prims : module_ -> int

(** Fold over every primitive in the design, FIFOs included. *)
val fold : ('a -> prim -> 'a) -> 'a -> t -> 'a

type summary = {
  n_modules : int;
  n_prims : int;
  n_fus : int;          (** functional units, multiplicity included *)
  reg_bits : int;       (** architectural register bits (banks) *)
  fsm_states : int;     (** summed over all controllers *)
  bram_bits : int;
  n_fifos : int;
  fifo_bits : int;
  n_pipes : int;
}

(** Size the design for reporting (used by [inca prove] and the bench). *)
val summarize : t -> summary

(** Total sequential state bits: registers, FSM encodings, FIFO payload
    and occupancy, BRAM contents — the quantity that bounds per-cycle
    BMC unrolling cost. *)
val state_bits : t -> int
