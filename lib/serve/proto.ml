type request = {
  req_id : string;
  req_job : Core.Job.t;
}

type cache_delta = { cd_memory_hits : int; cd_disk_hits : int }

type event =
  | Progress of { seq : int; label : string; data : Json.t }
  | Done of { report : Core.Report.t; cache : cache_delta }
  | Failed of { message : string }

let request_id j =
  match Json.member "id" j with
  | Some (Json.Str s) -> s
  | Some (Json.Int n) -> Int64.to_string n
  | _ -> "-"

(* [required] distinguishes the envelope form (version mandatory) from
   the bare-job form (validated only when the client sent one). *)
let check_version ~required j =
  match Json.member "schema_version" j with
  | None ->
      if required then Error "missing \"schema_version\" field" else Ok ()
  | Some v -> (
      match Json.get_int v with
      | None -> Error "\"schema_version\" must be an integer"
      | Some n when n <> Core.Report.schema_version ->
          Error
            (Printf.sprintf
               "schema_version mismatch: request speaks version %d, this daemon speaks \
                version %d"
               n Core.Report.schema_version)
      | Some _ -> Ok ())

let decode_request j : (request, string) result =
  let id = request_id j in
  match Json.member "job" j with
  | Some job_j -> (
      match check_version ~required:true j with
      | Error e -> Error e
      | Ok () -> (
          match Core.Job.of_json job_j with
          | Ok job -> Ok { req_id = id; req_job = job }
          | Error e -> Error e))
  | None -> (
      match Json.member "kind" j with
      | None ->
          Error
            "request must be {\"schema_version\": 1, \"id\": …, \"job\": {…}} or a bare \
             job object with a \"kind\" field"
      | Some _ -> (
          match check_version ~required:false j with
          | Error e -> Error e
          | Ok () -> (
              match Core.Job.of_json j with
              | Ok job -> Ok { req_id = id; req_job = job }
              | Error e -> Error e)))

let encode_event ~id (e : event) : string =
  let envelope name rest =
    Json.to_string
      (Json.Obj
         ([
            ("schema_version", Json.int Core.Report.schema_version);
            ("id", Json.Str id);
            ("event", Json.Str name);
          ]
         @ rest))
  in
  match e with
  | Progress { seq; label; data } ->
      envelope "progress"
        [ ("seq", Json.int seq); ("label", Json.Str label); ("data", data) ]
  | Done { report; cache } ->
      envelope "report"
        [
          ( "cache",
            Json.Obj
              [
                ("memory_hits", Json.int cache.cd_memory_hits);
                ("disk_hits", Json.int cache.cd_disk_hits);
              ] );
          ("report", Core.Report.to_json report);
        ]
  | Failed { message } -> envelope "error" [ ("error", Json.Str message) ]

let decode_event line : (string * event, string) result =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
      match check_version ~required:true j with
      | Error e -> Error e
      | Ok () -> (
          let id = request_id j in
          match Option.bind (Json.member "event" j) Json.get_str with
          | Some "progress" ->
              let seq =
                Option.value ~default:0
                  (Option.bind (Json.member "seq" j) Json.get_int)
              in
              let label =
                Option.value ~default:""
                  (Option.bind (Json.member "label" j) Json.get_str)
              in
              let data = Option.value ~default:Json.Null (Json.member "data" j) in
              Ok (id, Progress { seq; label; data })
          | Some "report" -> (
              match Json.member "report" j with
              | None -> Error "report event without a \"report\" field"
              | Some rj -> (
                  match Core.Report.of_json rj with
                  | Error e -> Error e
                  | Ok report ->
                      let cache =
                        match Json.member "cache" j with
                        | Some c ->
                            let get k =
                              Option.value ~default:0
                                (Option.bind (Json.member k c) Json.get_int)
                            in
                            {
                              cd_memory_hits = get "memory_hits";
                              cd_disk_hits = get "disk_hits";
                            }
                        | None -> { cd_memory_hits = 0; cd_disk_hits = 0 }
                      in
                      Ok (id, Done { report; cache })))
          | Some "error" ->
              let message =
                Option.value ~default:"unknown error"
                  (Option.bind (Json.member "error" j) Json.get_str)
              in
              Ok (id, Failed { message })
          | Some e -> Error (Printf.sprintf "unknown event %S" e)
          | None -> Error "event line without an \"event\" field"))

(* --- self-description ----------------------------------------------------- *)

let fields kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)

let source_doc = "{\"path\": string} | {\"name\": string, \"text\": string}"

let stimulus_doc =
  [
    ("feeds", "object: stream -> [int]  (default {}: auto-derived ramp)");
    ("drains", "[string]  (default []: auto-derived)");
    ("params", "object: proc -> {name: int}  (default {})");
  ]

let describe () : Json.t =
  Json.Obj
    [
      ("schema_version", Json.int Core.Report.schema_version);
      ( "request",
        fields
          [
            ("schema_version", "int, required in the envelope form");
            ("id", "string, echoed on every event (default \"-\")");
            ("job", "one of the job objects below; or send the job object bare");
          ] );
      ( "events",
        fields
          [
            ( "progress",
              "{schema_version, id, event: \"progress\", seq: int, label: string, \
               data: object}" );
            ( "report",
              "{schema_version, id, event: \"report\", cache: {memory_hits, \
               disk_hits}, report: <report envelope>}" );
            ("error", "{schema_version, id, event: \"error\", error: string}");
          ] );
      ( "report",
        fields
          [
            ("schema_version", "int");
            ("kind", "the job kind that produced the report");
            ("exit_code", "int; what the CLI adapter exits with");
            ("error", "string, present only on failure");
            ("report", "the kind-specific payload");
          ] );
      ( "jobs",
        Json.Obj
          [
            ( "compile",
              fields
                [
                  ("source", source_doc ^ ", required");
                  ("strategy", "string (default \"optimized\")");
                  ("nabort", "bool (default false)");
                  ("ndebug", "bool (default false)");
                  ("prune_proved", "bool (default false)");
                  ("prune_induction", "int (default 0: disabled)");
                ] );
            ( "check",
              fields
                [
                  ("sources", "[" ^ source_doc ^ "], required");
                  ("strategy", "string (default \"optimized\")");
                  ("nabort", "bool (default false)");
                  ("ndebug", "bool (default false)");
                ] );
            ( "prove",
              fields
                [
                  ("sources", "[" ^ source_doc ^ "], required");
                  ("depth", "int (default 12)");
                  ("induction", "int (default 4)");
                  ("assertion", "int | null (default null: all)");
                  ("conflict_limit", "int (default 200000)");
                  ("jobs", "int | null (default null: daemon default)");
                ] );
            ( "campaign",
              fields
                ([ ("source", source_doc ^ " | null (default: bundled workloads)") ]
                @ stimulus_doc
                @ [
                    ("budget", "int | null (default: 4x baseline + slack)");
                    ("watchdog", "int | null (default: budget/20, floor 200)");
                    ("max_mutants", "int | null (default: unlimited)");
                    ("jobs", "int | null");
                    ("from_reset", "bool (default false)");
                    ("max_cycles", "int (default 1000000)");
                  ]) );
            ( "mine",
              fields
                ([
                   ("source", source_doc ^ ", required");
                   ("strategy", "string (default \"parallelized\")");
                 ]
                @ stimulus_doc
                @ [
                    ("top", "int (default 10)");
                    ("max_candidates", "int (default 12)");
                    ("max_mutants", "int | null");
                    ("budget", "int | null");
                    ("jobs", "int | null");
                    ("emit", "bool (default false): include instrumented source");
                  ]) );
            ( "fuzz",
              fields
                [
                  ("seed", "int (default 42)");
                  ("count", "int | null (default: 200)");
                  ("fuel", "int | null (default: 8)");
                  ("max_cycles", "int | null");
                  ("watchdog", "int | null");
                  ("bmc_depth", "int | null (default null: cross-check disabled)");
                  ("corpus_dir", "string | null (default null: no reproducers written)");
                  ("jobs", "int | null");
                ] );
          ] );
    ]
