(** The [inca serve] wire protocol: newline-delimited JSON over a Unix
    socket.  One request line in, a stream of event lines out — zero or
    more [progress] events followed by exactly one terminal [report]
    (the {!Core.Report} envelope plus cache-hit counters) or [error].

    Two request forms are accepted:

    - the envelope: [{"schema_version": 1, "id": "…", "job": {…}}],
      with ["schema_version"] required;
    - a bare job object [{"kind": "check", …}] — the form a human types
      into [socat]/[nc]; ["schema_version"] is validated only when
      present.

    A version mismatch is rejected with a diagnostic naming both
    versions, never a parse crash; unknown fields are ignored
    everywhere. *)

type request = {
  req_id : string;  (** echoed on every event; ["-"] when absent *)
  req_job : Core.Job.t;
}

(** Cache effectiveness of one job: hits observed while it ran. *)
type cache_delta = { cd_memory_hits : int; cd_disk_hits : int }

type event =
  | Progress of { seq : int; label : string; data : Json.t }
  | Done of { report : Core.Report.t; cache : cache_delta }
  | Failed of { message : string }
      (** a request-level failure (undecodable request); job-level
          failures arrive as a [Done] whose report carries [error] *)

(** The id to echo when a request cannot be decoded. *)
val request_id : Json.t -> string

val decode_request : Json.t -> (request, string) result

(** One event as a protocol line (no trailing newline). *)
val encode_event : id:string -> event -> string

(** Client side: decode one event line into (id, event). *)
val decode_event : string -> (string * event, string) result

(** The machine-readable protocol description printed by [inca jobs]:
    schema version, request/event envelopes, and the fields of every
    job kind. *)
val describe : unit -> Json.t
