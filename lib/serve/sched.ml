module Driver = Core.Driver
module Job = Core.Job
module Report = Core.Report

type result =
  | R_compile of Core.Driver.compiled
  | R_check of (string * Analysis.Check.report) list
  | R_prove of (string * Analysis.Verdict.report) list
  | R_campaign of Campaign.report
  | R_mine of Mine.Rank.result
  | R_fuzz of Torture.Fuzz.report

type outcome = {
  sc_report : Core.Report.t;
  sc_text : string;
  sc_result : result option;
}

(* --- shared helpers ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* (display name, source text); [Path] raises [Sys_error] when missing. *)
let load_source (s : Job.source) =
  match s with
  | Job.Path p -> (Filename.basename p, read_file p)
  | Job.Text { name; text } -> (name, text)

let source_name = function
  | Job.Path p -> Filename.basename p
  | Job.Text { name; _ } -> name

(* A usage error: reported with exit code 1 and no payload. *)
exception Usage of string

(* Mirrors [Cli.strategy_of_string] + [Cli.apply_sel]: "none" aliases
   baseline, NDEBUG wins over everything, NABORT folds into the
   strategy. *)
let resolve_strategy ?(nabort = false) ?(ndebug = false) name =
  let named =
    match name with
    | "none" -> Some ("baseline", Driver.baseline)
    | s -> Option.map (fun st -> (s, st)) (List.assoc_opt s Driver.all_strategies)
  in
  match named with
  | None ->
      raise
        (Usage
           (Printf.sprintf "unknown strategy %s (expected one of %s)" name
              (String.concat ", " (List.map fst Driver.all_strategies))))
  | Some (sname, strategy) ->
      if ndebug then ("baseline", Driver.baseline)
      else (sname, { strategy with Driver.nabort })

let diag_lines diags =
  String.concat "" (List.map (fun d -> Analysis.Diag.to_string d ^ "\n") diags)

let loc_message (loc : Front.Loc.t) m =
  if loc = Front.Loc.none then m
  else Printf.sprintf "%s:%d:%d: %s" loc.Front.Loc.file loc.Front.Loc.line loc.Front.Loc.col m

(* --- compile -------------------------------------------------------------- *)

(* The area/timing report, verbatim from the CLI's former printer so
   [inca compile] output is unchanged. *)
let compile_text (c : Driver.compiled) =
  let b = Buffer.create 1024 in
  let p fmt = Printf.bprintf b fmt in
  let a = c.Driver.area in
  let t = c.Driver.timing in
  p "assertions: %d\n" (List.length c.Driver.asserts);
  List.iter
    (fun (id, (info : Core.Assertion.info)) ->
      p "  #%d %s:%d in %s: %s\n" id info.Core.Assertion.aloc.Front.Loc.file
        info.Core.Assertion.aloc.Front.Loc.line info.Core.Assertion.aproc
        info.Core.Assertion.text)
    c.Driver.table;
  p "failure channels: %d\n" (List.length c.Driver.plan.Core.Share.streams);
  (let pr = c.Driver.pruned in
   if pr.Driver.absint_pruned > 0 || pr.Driver.induction_pruned > 0 then
     p "pruned checkers: %d (%d absint-proved, %d induction-proved)\n"
       (pr.Driver.absint_pruned + pr.Driver.induction_pruned)
       pr.Driver.absint_pruned pr.Driver.induction_pruned);
  p "\nEP2S180 utilization:\n";
  p "  ALUTs        %7d (%.2f%%)\n" a.Rtl.Area.aluts
    (100.0 *. float_of_int a.Rtl.Area.aluts /. 143520.0);
  p "  registers    %7d (%.2f%%)\n" a.Rtl.Area.registers
    (100.0 *. float_of_int a.Rtl.Area.registers /. 143520.0);
  p "  RAM bits     %7d (%.2f%%)\n" a.Rtl.Area.ram_bits
    (100.0 *. float_of_int a.Rtl.Area.ram_bits /. 9383040.0);
  p "  interconnect %7d (%.2f%%)\n" a.Rtl.Area.interconnect
    (100.0 *. float_of_int a.Rtl.Area.interconnect /. 536440.0);
  p "  DSP 18x18    %7d\n" a.Rtl.Area.dsps;
  p "\ntiming: fmax %.1f MHz (logic %.2f ns + routing %.2f ns)\n" t.Rtl.Timing.fmax_mhz
    t.Rtl.Timing.logic_ns t.Rtl.Timing.route_ns;
  List.iter
    (fun (f : Hls.Fsmd.t) ->
      p "process %s: %d states, %d pipelined loop(s)\n" f.Hls.Fsmd.proc.Mir.Ir.name
        (Hls.Fsmd.num_states f)
        (Array.length f.Hls.Fsmd.pipes);
      Array.iter
        (fun (pipe : Hls.Fsmd.pipe) ->
          p "  pipeline: II=%d, depth=%d\n" pipe.Hls.Fsmd.ii pipe.Hls.Fsmd.depth)
        f.Hls.Fsmd.pipes)
    c.Driver.fsmds;
  Buffer.contents b

let compile_json ~file ~strategy (c : Driver.compiled) : Json.t =
  let a = c.Driver.area in
  let t = c.Driver.timing in
  Json.Obj
    [
      ("file", Json.Str file);
      ("strategy", Json.Str strategy);
      ( "assertions",
        Json.list
          (fun (id, (info : Core.Assertion.info)) ->
            Json.Obj
              [
                ("id", Json.int id);
                ("proc", Json.Str info.Core.Assertion.aproc);
                ("file", Json.Str info.Core.Assertion.aloc.Front.Loc.file);
                ("line", Json.int info.Core.Assertion.aloc.Front.Loc.line);
                ("text", Json.Str info.Core.Assertion.text);
              ])
          c.Driver.table );
      ("failure_channels", Json.int (List.length c.Driver.plan.Core.Share.streams));
      ( "pruned",
        Json.Obj
          [
            ("absint", Json.int c.Driver.pruned.Driver.absint_pruned);
            ("induction", Json.int c.Driver.pruned.Driver.induction_pruned);
          ] );
      ( "area",
        Json.Obj
          [
            ("aluts", Json.int a.Rtl.Area.aluts);
            ("registers", Json.int a.Rtl.Area.registers);
            ("ram_bits", Json.int a.Rtl.Area.ram_bits);
            ("interconnect", Json.int a.Rtl.Area.interconnect);
            ("dsps", Json.int a.Rtl.Area.dsps);
          ] );
      ( "timing",
        Json.Obj
          [
            ("fmax_mhz", Json.float t.Rtl.Timing.fmax_mhz);
            ("logic_ns", Json.float t.Rtl.Timing.logic_ns);
            ("route_ns", Json.float t.Rtl.Timing.route_ns);
          ] );
      ( "processes",
        Json.list
          (fun (f : Hls.Fsmd.t) ->
            Json.Obj
              [
                ("name", Json.Str f.Hls.Fsmd.proc.Mir.Ir.name);
                ("states", Json.int (Hls.Fsmd.num_states f));
                ( "pipelines",
                  Json.list
                    (fun (pipe : Hls.Fsmd.pipe) ->
                      Json.Obj
                        [
                          ("ii", Json.int pipe.Hls.Fsmd.ii);
                          ("depth", Json.int pipe.Hls.Fsmd.depth);
                        ])
                    (Array.to_list f.Hls.Fsmd.pipes) );
              ])
          c.Driver.fsmds );
      ("diagnostics", Json.list Analysis.Diag.json_of (Driver.static_diags c));
    ]

let do_compile (c : Job.compile_params) : outcome =
  let file, src = load_source c.c_source in
  let prog = Front.Typecheck.parse_and_check ~file src in
  let sname, strategy =
    resolve_strategy ~nabort:c.c_nabort ~ndebug:c.c_ndebug c.c_strategy
  in
  let induction_proved =
    if c.c_prune_induction <= 0 then []
    else
      let rep, _ = Core.Verify.prove ~induction:c.c_prune_induction prog in
      Core.Verify.induction_proved_keys rep
  in
  let comp =
    Driver.compile ~strategy ~prune_proved:c.c_prune_proved ~induction_proved prog
  in
  let payload = compile_json ~file ~strategy:sname comp in
  match Driver.static_diags comp with
  | [] ->
      {
        sc_report = Report.make ~kind:"compile" payload;
        sc_text = compile_text comp;
        sc_result = Some (R_compile comp);
      }
  | diags ->
      {
        sc_report = Report.fail ~kind:"compile" ~payload "scheduler invariant violations";
        sc_text = compile_text comp ^ diag_lines diags;
        sc_result = Some (R_compile comp);
      }

(* --- check ---------------------------------------------------------------- *)

let do_check ?progress (k : Job.check_params) : outcome =
  if k.k_sources = [] then raise (Usage "check: no sources given");
  let _, strategy = resolve_strategy ~nabort:k.k_nabort ~ndebug:k.k_ndebug k.k_strategy in
  let share_bits =
    match strategy.Driver.share with `Shared n -> Some n | `Per_proc | `Dma -> None
  in
  let check_one s =
    let file = source_name s in
    let rep =
      match load_source s with
      | exception Sys_error m ->
          Analysis.Check.failure_report ~code:"INCA-P001" Front.Loc.none m
      | file, src -> (
          match Front.Typecheck.parse_and_check ~file src with
          | prog -> (
              let rep =
                Analysis.Check.report_of ?share_bits ~replicate:strategy.Driver.replicate
                  ?watchdog:k.k_watchdog prog
              in
              (* the compiler-side half: FSMD scheduler invariants and
                 lowered-IR well-formedness under the selected strategy;
                 through the cache so a warm daemon skips the rebuild *)
              match Exec.Cache.compile ~strategy prog with
              | c -> Analysis.Check.add_diags rep (Driver.static_diags c)
              | exception e ->
                  Analysis.Check.add_diags rep
                    [
                      Analysis.Diag.error ~code:"INCA-S003" Front.Loc.none
                        ("compilation failed: " ^ Printexc.to_string e);
                    ])
          | exception Front.Typecheck.Error (m, loc) ->
              Analysis.Check.failure_report ~code:"INCA-P002" loc m
          | exception Front.Parser.Error (m, loc) ->
              Analysis.Check.failure_report ~code:"INCA-P001" loc m
          | exception Front.Lexer.Error (m, loc) ->
              Analysis.Check.failure_report ~code:"INCA-P001" loc m)
    in
    (* --only/--ignore restrict diagnostics (and therefore the exit
       status) after every producer has contributed, including the
       compiler-side invariant checks *)
    let rep = Analysis.Check.filter_codes ?only:k.k_only ?ignore:k.k_ignore rep in
    (match progress with
    | Some f ->
        f ~label:("file " ^ file)
          ~data:
            (Json.Obj
               [
                 ("file", Json.Str file);
                 ("failed", Json.Bool (Analysis.Check.failed rep));
               ])
    | None -> ());
    (file, rep)
  in
  let results = List.map check_one k.k_sources in
  let failed = List.exists (fun (_, rep) -> Analysis.Check.failed rep) results in
  let payload =
    Json.Obj
      [
        ( "files",
          Json.list (fun (file, rep) -> Analysis.Check.json_of ~file rep) results );
        ("failed", Json.Bool failed);
      ]
  in
  {
    sc_report = Report.make ~kind:"check" ~exit_code:(if failed then 1 else 0) payload;
    sc_text =
      String.concat "" (List.map (fun (file, rep) -> Analysis.Check.render ~file rep) results);
    sc_result = Some (R_check results);
  }

(* --- prove ---------------------------------------------------------------- *)

let do_prove ?progress ?default_jobs (p : Job.prove_params) : outcome =
  if p.p_sources = [] then raise (Usage "prove: no sources given");
  let jobs = match p.p_jobs with Some _ as j -> j | None -> default_jobs in
  let prove_one s =
    let file = source_name s in
    let err m =
      (match progress with
      | Some f -> f ~label:("file " ^ file) ~data:(Json.Obj [ ("file", Json.Str file); ("error", Json.Str m) ])
      | None -> ());
      ( file,
        m ^ "\n",
        Json.Obj [ ("file", Json.Str file); ("error", Json.Str m) ],
        `Error,
        None )
    in
    match load_source s with
    | exception Sys_error m -> err m
    | file, src -> (
        match Front.Typecheck.parse_and_check ~file src with
        | exception Front.Typecheck.Error (m, loc)
        | exception Front.Parser.Error (m, loc)
        | exception Front.Lexer.Error (m, loc) ->
            err (Printf.sprintf "%s:%d:%d: %s" file loc.Front.Loc.line loc.Front.Loc.col m)
        | prog -> (
            match Core.Verify.front_of prog with
            | exception e ->
                err (Printf.sprintf "%s: compilation failed: %s" file (Printexc.to_string e))
            | f ->
                let absint = Analysis.Absint.analyze prog in
                let ids = Core.Verify.target_ids f in
                let ids =
                  match p.p_assertion with
                  | Some a -> List.filter (( = ) a) ids
                  | None -> ids
                in
                let outcomes =
                  Exec.Pool.map ?jobs
                    (fun id ->
                      Core.Verify.check_target ~depth:p.p_depth ~induction:p.p_induction
                        ~conflict_limit:p.p_conflict_limit f ~absint id)
                    ids
                in
                let results, extra =
                  List.fold_left2
                    (fun (rs, ds) id (o : _ Exec.Pool.outcome) ->
                      match o.Exec.Pool.value with
                      | Ok (r, d) ->
                          (r :: rs, match d with Some d -> d :: ds | None -> ds)
                      | Error m ->
                          let info = List.assoc id f.Driver.f_table in
                          ( {
                              Analysis.Verdict.pr_id = id;
                              pr_proc = info.Core.Assertion.aproc;
                              pr_loc = info.Core.Assertion.aloc;
                              pr_text = info.Core.Assertion.text;
                              pr_class = Analysis.Verdict.Bunknown ("worker failed: " ^ m);
                              pr_reach = Analysis.Verdict.Breach_unknown m;
                              pr_dead_lint = false;
                              pr_conflicts = 0;
                              pr_decisions = 0;
                              pr_propagations = 0;
                            }
                            :: rs,
                            ds ))
                    ([], []) ids outcomes
                in
                let results = List.rev results in
                let rep =
                  {
                    Analysis.Verdict.p_depth = p.p_depth;
                    p_induction = p.p_induction;
                    p_results = results;
                  }
                in
                let diags =
                  Analysis.Diag.order
                    (List.filter_map Analysis.Verdict.diag_of results @ List.rev extra)
                in
                let finished = Driver.finish f in
                let summary = Rtl.Netlist.summarize finished.Driver.netlist in
                let text =
                  Printf.sprintf "%s: %d modules, %d primitives, %d sequential state bits\n"
                    file summary.Rtl.Netlist.n_modules summary.Rtl.Netlist.n_prims
                    (Rtl.Netlist.state_bits finished.Driver.netlist)
                  ^ Analysis.Verdict.render ~file rep
                  ^ diag_lines diags
                in
                let violated =
                  List.exists
                    (fun (r : Analysis.Verdict.presult) ->
                      match r.Analysis.Verdict.pr_class with
                      | Analysis.Verdict.Bviolated _ -> true
                      | _ -> false)
                    results
                in
                let _, v, _, _ = Analysis.Verdict.tally rep in
                (match progress with
                | Some f ->
                    f ~label:("file " ^ file)
                      ~data:
                        (Json.Obj
                           [ ("file", Json.Str file); ("violated", Json.int v) ])
                | None -> ());
                ( file,
                  text,
                  Analysis.Verdict.json_of ~file rep,
                  (if violated then `Violated else `Ok),
                  Some (file, rep) )))
  in
  let rows = List.map prove_one p.p_sources in
  let statuses = List.map (fun (_, _, _, st, _) -> st) rows in
  let exit_code =
    if List.mem `Error statuses then 2 else if List.mem `Violated statuses then 1 else 0
  in
  let payload =
    Json.Obj [ ("files", Json.list (fun (_, _, j, _, _) -> j) rows) ]
  in
  let reps = List.filter_map (fun (_, _, _, _, r) -> r) rows in
  let report =
    if List.mem `Error statuses then
      Report.fail ~kind:"prove" ~exit_code ~payload "one or more sources failed to compile"
    else Report.make ~kind:"prove" ~exit_code payload
  in
  {
    sc_report = report;
    sc_text = String.concat "" (List.map (fun (_, t, _, _, _) -> t) rows);
    sc_result = Some (R_prove reps);
  }

(* --- campaign ------------------------------------------------------------- *)

let run_json (run : Campaign.run) : Json.t =
  Json.Obj
    [
      ("workload", Json.Str run.Campaign.workload);
      ("strategy", Json.Str run.Campaign.strategy);
      ("fault", Json.Str (Faults.Fault.describe run.Campaign.fault));
      ("class", Json.Str (Campaign.class_name run.Campaign.outcome));
      ("cycles", Json.int run.Campaign.cycles);
    ]

let campaign_workloads ?(stimulus = Job.empty_stimulus) ~max_cycles source =
  let workloads =
    match source with
    | None -> Campaign.bundled ()
    | Some s ->
        let file, src = load_source s in
        let name = Filename.remove_extension file in
        let prog = Front.Typecheck.parse_and_check ~file src in
        let o =
          Mine.Trace.auto_options ~feeds:stimulus.Job.feeds ~drains:stimulus.Job.drains
            ~params:stimulus.Job.params prog
        in
        [
          {
            Campaign.wname = name;
            program = prog;
            options =
              {
                Driver.default_sim_options with
                Driver.feeds = o.Driver.feeds;
                drains = o.Driver.drains;
                params = o.Driver.params;
              };
          };
        ]
  in
  List.map
    (fun (w : Campaign.workload) ->
      { w with Campaign.options = { w.Campaign.options with Driver.max_cycles } })
    workloads

let escapes_of (r : Campaign.report) =
  List.filter
    (fun (run : Campaign.run) ->
      run.Campaign.strategy <> "baseline"
      && run.Campaign.outcome = Campaign.Silent_corruption)
    r.Campaign.runs

let do_campaign ?progress ?default_jobs (a : Job.campaign_params) : outcome =
  let workloads =
    campaign_workloads ~stimulus:a.a_stimulus ~max_cycles:a.a_max_cycles a.a_source
  in
  let jobs = match a.a_jobs with Some _ as j -> j | None -> default_jobs in
  let config =
    {
      Campaign.default_config with
      Campaign.mode = (if a.a_from_reset then Campaign.From_reset else Campaign.Fork);
      budget = a.a_budget;
      watchdog = a.a_watchdog;
      max_mutants = a.a_max_mutants;
      jobs;
      prune_hangs = a.a_prune_hangs;
    }
  in
  (* The sharded evaluation path: plan serially, evaluate every
     (workload x strategy x fault-site) shard on the pool, merge in
     shard-index order.  Identical to [Campaign.run] by construction;
     spelled out here so each shard's classification streams to the
     client as a progress event. *)
  let p = Campaign.plan ~config workloads in
  let n = Campaign.shard_count p in
  let fns = Array.init n (fun i () -> Campaign.eval_shard p i) in
  let outcomes = Exec.Pool.run ?jobs ~retries:1 fns in
  let out = ref [] in
  for i = 0 to n - 1 do
    let o = outcomes.(i) in
    let r =
      match o.Exec.Pool.value with
      | Ok r -> Campaign.with_retry r ~attempts:o.Exec.Pool.attempts
      | Error m -> Campaign.with_retry (Campaign.crash_run p i m) ~attempts:o.Exec.Pool.attempts
    in
    (match progress with
    | Some f -> f ~label:("mutant " ^ Campaign.shard_label p i) ~data:(run_json r)
    | None -> ());
    out := r :: !out
  done;
  let rep = Campaign.merge p (List.rev !out) in
  let payload = Campaign.json_of rep in
  let escapes = escapes_of rep in
  let report =
    if escapes = [] then Report.make ~kind:"campaign" payload
    else
      Report.fail ~kind:"campaign" ~payload
        (Printf.sprintf "%d mutant(s) silently escaped an instrumented strategy"
           (List.length escapes))
  in
  {
    sc_report = report;
    sc_text = Campaign.render rep ^ "\n";
    sc_result = Some (R_campaign rep);
  }

(* --- mine ----------------------------------------------------------------- *)

let do_mine ?progress ?default_jobs (m : Job.mine_params) : outcome =
  let file, src = load_source m.m_source in
  let name = Filename.remove_extension file in
  let prog = Front.Typecheck.parse_and_check ~file src in
  let strategy = resolve_strategy m.m_strategy in
  let options =
    Mine.Trace.auto_options ~feeds:m.m_stimulus.Job.feeds ~drains:m.m_stimulus.Job.drains
      ~params:m.m_stimulus.Job.params prog
  in
  let jobs = match m.m_jobs with Some _ as j -> j | None -> default_jobs in
  let config =
    {
      Mine.Rank.strategy;
      max_candidates = m.m_max_candidates;
      max_mutants = m.m_max_mutants;
      budget = m.m_budget;
      watchdog = None;
      jobs;
    }
  in
  let hook =
    Option.map
      (fun f (s : Mine.Rank.scored) ->
        f
          ~label:
            (Printf.sprintf "candidate %d" s.Mine.Rank.candidate.Mine.Infer.uid)
          ~data:
            (Json.Obj
               [
                 ("uid", Json.int s.Mine.Rank.candidate.Mine.Infer.uid);
                 ("invariant", Json.Str (Mine.Infer.describe s.Mine.Rank.candidate));
                 ("kills", Json.int s.Mine.Rank.kills);
                 ("marginal", Json.int s.Mine.Rank.marginal);
               ]))
      progress
  in
  let r = Mine.Rank.mine ~config ?progress:hook ~name ~options prog in
  let top = m.m_top in
  let instrumented =
    if not m.m_emit then None
    else
      match Mine.Infer.inject prog (Mine.Rank.top_candidates ~top r) with
      | Some (src, _) -> Some src
      | None -> None
  in
  let payload =
    match Mine.Rank.json_of ~top r with
    | Json.Obj fields when m.m_emit ->
        Json.Obj (fields @ [ ("instrumented", Json.opt Json.str instrumented) ])
    | j -> j
  in
  let text =
    Mine.Rank.render ~top r
    ^
    match instrumented with
    | Some src ->
        "\n/* --- source instrumented with mined assertions --- */\n" ^ src
    | None ->
        if m.m_emit then "could not inject the top candidates together\n" else ""
  in
  {
    sc_report = Report.make ~kind:"mine" payload;
    sc_text = text;
    sc_result = Some (R_mine r);
  }

(* --- fuzz ----------------------------------------------------------------- *)

let do_fuzz ?progress ?default_jobs (z : Job.fuzz_params) : outcome =
  let jobs = match z.z_jobs with Some _ as j -> j | None -> default_jobs in
  let r =
    Torture.Fuzz.run ?jobs ~seed:z.z_seed ?count:z.z_count ?fuel:z.z_fuel
      ?max_cycles:z.z_max_cycles ?watchdog:z.z_watchdog ?bmc_depth:z.z_bmc_depth
      ?corpus_dir:z.z_corpus_dir ()
  in
  (match progress with
  | Some f ->
      f ~label:"fuzz"
        ~data:
          (Json.Obj
             [
               ("count", Json.int r.Torture.Fuzz.r_count);
               ("divergent", Json.int (List.length r.Torture.Fuzz.r_findings));
             ])
  | None -> ());
  let payload = Torture.Fuzz.json_of r in
  let report =
    match r.Torture.Fuzz.r_findings with
    | [] -> Report.make ~kind:"fuzz" payload
    | fs ->
        Report.fail ~kind:"fuzz" ~payload
          (Printf.sprintf "%d divergent program(s)%s" (List.length fs)
             (match z.z_corpus_dir with
             | Some d -> Printf.sprintf "; shrunk reproducer(s) in %s" d
             | None -> ""))
  in
  { sc_report = report; sc_text = Torture.Fuzz.render r; sc_result = Some (R_fuzz r) }

(* --- dispatch ------------------------------------------------------------- *)

let run ?progress ?default_jobs (job : Job.t) : outcome =
  let kind = Job.kind job in
  let fail ?payload ~exit_code msg =
    { sc_report = Report.fail ~kind ~exit_code ?payload msg; sc_text = ""; sc_result = None }
  in
  try
    match job with
    | Job.Compile c -> do_compile c
    | Job.Check k -> do_check ?progress k
    | Job.Prove p -> do_prove ?progress ?default_jobs p
    | Job.Campaign a -> do_campaign ?progress ?default_jobs a
    | Job.Mine m -> do_mine ?progress ?default_jobs m
    | Job.Fuzz z -> do_fuzz ?progress ?default_jobs z
  with
  | Usage m -> fail ~exit_code:1 m
  | Driver.Static_violation vs ->
      let diags = List.filter_map Analysis.Check.diag_of_verdict vs in
      {
        sc_report =
          Report.fail ~kind
            ~payload:(Json.Obj [ ("diagnostics", Json.list Analysis.Diag.json_of diags) ])
            "statically violated assertion(s); compile aborted";
        sc_text = diag_lines diags;
        sc_result = None;
      }
  | Front.Typecheck.Error (m, loc)
  | Front.Parser.Error (m, loc)
  | Front.Lexer.Error (m, loc) ->
      fail ~exit_code:1 (loc_message loc m)
  | Sys_error m -> fail ~exit_code:1 m
  | Invalid_argument m -> fail ~exit_code:1 m
  | e -> fail ~exit_code:2 ("internal error: " ^ Printexc.to_string e)
