(** The job scheduler: run any {!Core.Job} to a {!Core.Report}.

    This is the single execution path behind every [inca] subcommand's
    [--json] output and every daemon request — the CLI adapters in
    [bin/inca.ml] construct a job, call {!run}, and render the outcome;
    the server does the same per protocol request.  Compiles and
    campaign baselines go through the shared {!Exec.Cache}, so a
    long-lived daemon serves repeat jobs warm.

    {!run} never raises: parse/typecheck errors, missing files, usage
    errors and internal exceptions all come back as a failure report
    with a nonzero [exit_code]. *)

(** The typed result, for callers (the CLI) that render beyond the
    report payload — e.g. [inca campaign --classes]. *)
type result =
  | R_compile of Core.Driver.compiled
  | R_check of (string * Analysis.Check.report) list
  | R_prove of (string * Analysis.Verdict.report) list
  | R_campaign of Campaign.report
  | R_mine of Mine.Rank.result
  | R_fuzz of Torture.Fuzz.report

type outcome = {
  sc_report : Core.Report.t;
  sc_text : string;  (** the human-readable rendering ("" when failed) *)
  sc_result : result option;  (** [None] when the job failed outright *)
}

(** [progress] is called on the scheduling domain, in deterministic
    order: per file (check/prove), per mutant shard (campaign), per
    scored candidate (mine).  [default_jobs] is used when the job
    leaves its [jobs] field unset (the daemon's [--jobs]). *)
val run :
  ?progress:(label:string -> data:Json.t -> unit) ->
  ?default_jobs:int ->
  Core.Job.t ->
  outcome
