type t = {
  sv_socket : string;
  sv_fd : Unix.file_descr;
  sv_stop_r : Unix.file_descr;
  sv_stop_w : Unix.file_descr;
  sv_jobs : int option;
  sv_stopping : bool Atomic.t;
  mutable sv_thread : Thread.t option;
}

(* Replace a stale socket file; refuse to clobber a live daemon. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        failwith (Printf.sprintf "%s is already in use by a running daemon" path)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        Unix.close probe;
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
        Unix.close probe;
        raise e
  end

(* Write [line ^ "\n"] whole; flip [ok] off instead of raising when the
   client has gone away, so the job still runs to completion. *)
let send_line fd ok line =
  if !ok then begin
    let b = Bytes.of_string (line ^ "\n") in
    let n = Bytes.length b in
    let off = ref 0 in
    try
      while !off < n do
        let w = Unix.write fd b !off (n - !off) in
        if w <= 0 then raise Exit;
        off := !off + w
      done
    with
    | Exit -> ok := false
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
      ->
        ok := false
  end

let handle_line t conn ok line =
  let line = String.trim line in
  if line <> "" then begin
    let send e = send_line conn ok (Proto.encode_event ~id:(fst e) (snd e)) in
    match Json.parse line with
    | Error e -> send ("-", Proto.Failed { message = e })
    | Ok j -> (
        let id = Proto.request_id j in
        match Proto.decode_request j with
        | Error e -> send (id, Proto.Failed { message = e })
        | Ok req ->
            let before = Exec.Cache.stats () in
            let seq = ref 0 in
            let progress ~label ~data =
              let e = Proto.Progress { seq = !seq; label; data } in
              incr seq;
              send (id, e)
            in
            let outcome = Sched.run ~progress ?default_jobs:t.sv_jobs req.Proto.req_job in
            let after = Exec.Cache.stats () in
            let cache =
              {
                Proto.cd_memory_hits = after.Exec.Cache.hits - before.Exec.Cache.hits;
                cd_disk_hits = after.Exec.Cache.disk_hits - before.Exec.Cache.disk_hits;
              }
            in
            send (id, Proto.Done { report = outcome.Sched.sc_report; cache }))
  end

(* Read protocol lines off one connection until EOF or stop. *)
let handle_conn t conn =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let ok = ref true in
  let closed = ref false in
  while not !closed do
    match Unix.select [ conn; t.sv_stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.sv_stop_r ready then closed := true
        else begin
          let n =
            try Unix.read conn chunk 0 (Bytes.length chunk) with
            | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
          in
          if n = 0 then closed := true
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            (* process every complete line accumulated so far *)
            let s = Buffer.contents buf in
            let rec drain start =
              match String.index_from_opt s start '\n' with
              | None ->
                  Buffer.clear buf;
                  Buffer.add_string buf (String.sub s start (String.length s - start))
              | Some nl ->
                  handle_line t conn ok (String.sub s start (nl - start));
                  drain (nl + 1)
            in
            drain 0
          end
        end
  done

let accept_loop t =
  let running = ref true in
  while !running do
    match Unix.select [ t.sv_fd; t.sv_stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.sv_stop_r ready then running := false
        else begin
          match Unix.accept t.sv_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | conn, _ ->
              (* one connection at a time: requests are serialized at
                 the job level, parallel inside the job *)
              (try handle_conn t conn with _ -> ());
              (try Unix.close conn with Unix.Unix_error _ -> ())
        end
  done

let start ~socket ?jobs () =
  claim_socket socket;
  (* writing to a disconnected client must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 8
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let stop_r, stop_w = Unix.pipe () in
  let t =
    { sv_socket = socket; sv_fd = fd; sv_stop_r = stop_r; sv_stop_w = stop_w;
      sv_jobs = jobs; sv_stopping = Atomic.make false; sv_thread = None }
  in
  t.sv_thread <- Some (Thread.create accept_loop t);
  t

(* The stop byte is never drained, so every select in flight — accept
   loop and connection readers alike — stays ready once signalled. *)
let signal_stop t =
  Atomic.set t.sv_stopping true;
  try ignore (Unix.write t.sv_stop_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let stopping t = Atomic.get t.sv_stopping

let cleanup t =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.sv_fd; t.sv_stop_r; t.sv_stop_w ];
  try Unix.unlink t.sv_socket with Unix.Unix_error _ | Sys_error _ -> ()

let wait t =
  (match t.sv_thread with Some th -> Thread.join th | None -> ());
  t.sv_thread <- None;
  cleanup t

let stop t =
  signal_stop t;
  wait t

(* --- client --------------------------------------------------------------- *)

let request ~socket ?(id = "-") ?on_progress (job : Core.Job.t) =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let line =
      Json.to_string
        (Json.Obj
           [
             ("schema_version", Json.int Core.Report.schema_version);
             ("id", Json.Str id);
             ("job", Core.Job.to_json job);
           ])
      ^ "\n"
    in
    let b = Bytes.of_string line in
    let off = ref 0 in
    while !off < Bytes.length b do
      off := !off + Unix.write fd b !off (Bytes.length b - !off)
    done;
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let result = ref None in
    while !result = None do
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then result := Some (Error "connection closed before a report arrived")
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec drain start =
          if !result <> None then ()
          else
            match String.index_from_opt s start '\n' with
            | None ->
                Buffer.clear buf;
                Buffer.add_string buf (String.sub s start (String.length s - start))
            | Some nl ->
                let l = String.trim (String.sub s start (nl - start)) in
                (if l <> "" then
                   match Proto.decode_event l with
                   | Error e -> result := Some (Error ("protocol error: " ^ e))
                   | Ok (_, Proto.Progress { seq; label; data }) ->
                       (match on_progress with
                       | Some f -> f ~seq ~label ~data
                       | None -> ())
                   | Ok (_, Proto.Done { report; cache }) ->
                       result := Some (Ok (report, cache))
                   | Ok (_, Proto.Failed { message }) -> result := Some (Error message));
                drain (nl + 1)
        in
        drain 0
      end
    done;
    Option.get !result
  with
  | r ->
      finally ();
      r
  | exception Unix.Unix_error (e, fn, _) ->
      finally ();
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Sys_error m ->
      finally ();
      Error m
