(** The [inca serve] daemon: a Unix-socket server speaking the
    {!Proto} protocol, plus the matching client used by [inca submit]
    and the tests.

    Connections are accepted sequentially and each request runs to
    completion before the next is read — job-level serialization is
    what makes sharded campaign output byte-identical to the CLI; the
    parallelism lives {e inside} a job, on {!Exec.Pool}.  A malformed
    request gets an [error] event and the connection stays up; a client
    that disconnects mid-job does not kill the daemon or abort the job
    (it runs to completion, keeping the on-disk cache consistent). *)

type t

(** Bind [socket] and start the accept loop on a background thread.
    A stale socket file (no listener behind it) is replaced; a live one
    raises [Failure].  [jobs] is the default worker count for jobs that
    leave their [jobs] field unset. *)
val start : socket:string -> ?jobs:int -> unit -> t

(** Ask the accept loop to exit after the in-flight request (async-
    signal-safe: usable from a signal handler). *)
val signal_stop : t -> unit

(** Whether {!signal_stop} has been called.  The CLI's foreground loop
    polls this instead of parking in [Thread.join] — a thread blocked in
    [join] never reaches an OCaml safepoint, so a signal handler would
    never run. *)
val stopping : t -> bool

(** Join the accept loop and remove the socket file. *)
val wait : t -> unit

(** [signal_stop] then [wait]. *)
val stop : t -> unit

(** Client: submit one job and block until the terminal event.
    [on_progress] sees each progress event as it streams in.  Returns
    the report and the daemon's cache-hit delta for the job, or a
    connection/protocol error. *)
val request :
  socket:string ->
  ?id:string ->
  ?on_progress:(seq:int -> label:string -> data:Json.t -> unit) ->
  Core.Job.t ->
  (Core.Report.t * Proto.cache_delta, string) result
