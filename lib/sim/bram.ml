(** Cycle-accurate block RAM.

    The physical array is padded to the next power of two and addresses
    wrap (the address bus has a fixed width): an out-of-range C index
    silently reads or clobbers padding — the hardware behaviour behind
    the paper's Figure 3 bug, where a negative index that the software
    simulator clamps becomes a wild in-circuit access.

    Reads return pre-cycle contents; stores are staged and applied by
    [commit] at the end of the cycle (mixed-port read-during-write on a
    Stratix-II returns old data).  Per-cycle port usage is tracked so
    the engine can verify the scheduler's port guarantees at runtime. *)

type t = {
  name : string;
  logical_length : int;
  data : int64 array;           (* padded to a power of two *)
  mask : int;
  ports : int;
  mutable staged : (int * int64) list;
  mutable accesses_this_cycle : int;
  mutable port_violations : int;
  mutable reads : int;
  mutable writes : int;
  mutable wild_accesses : int;  (* accesses outside the logical length *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(init = []) ~name ~length ~ports () =
  let phys = next_pow2 (max length 1) in
  let data = Array.make phys 0L in
  List.iteri (fun i v -> if i < phys then data.(i) <- v) init;
  {
    name;
    logical_length = length;
    data;
    mask = phys - 1;
    ports;
    staged = [];
    accesses_this_cycle = 0;
    port_violations = 0;
    reads = 0;
    writes = 0;
    wild_accesses = 0;
  }

let wrap_addr t (addr : int64) = Int64.to_int (Int64.logand addr (Int64.of_int t.mask))

let note_access t addr =
  t.accesses_this_cycle <- t.accesses_this_cycle + 1;
  if t.accesses_this_cycle > t.ports then t.port_violations <- t.port_violations + 1;
  if addr >= t.logical_length then t.wild_accesses <- t.wild_accesses + 1

(** Synchronous read: returns the pre-cycle value at the wrapped address. *)
let read t addr =
  let a = wrap_addr t addr in
  note_access t a;
  t.reads <- t.reads + 1;
  t.data.(a)

(** Stage a write; applied at [commit]. *)
let write t addr v =
  let a = wrap_addr t addr in
  note_access t a;
  t.writes <- t.writes + 1;
  t.staged <- (a, v) :: t.staged

(** Mirror write (resource replication, Section 3.2): uses the replica's
    dedicated write port, so it does not count against [ports]. *)
let mirror_write t addr v =
  let a = wrap_addr t addr in
  t.writes <- t.writes + 1;
  t.staged <- (a, v) :: t.staged

let commit t =
  (* staged list is in reverse program order; apply oldest first *)
  List.iter (fun (a, v) -> t.data.(a) <- v) (List.rev t.staged);
  t.staged <- [];
  t.accesses_this_cycle <- 0

(** Direct (testbench) access, no port accounting. *)
let peek t i = t.data.(wrap_addr t (Int64.of_int i))
let poke t i v = t.data.(wrap_addr t (Int64.of_int i)) <- v

(** Deep copy (for engine snapshots). *)
let copy t = { t with data = Array.copy t.data }

(** Overwrite [t]'s state with [saved]'s; [saved] is left untouched. *)
let restore t ~saved =
  Array.blit saved.data 0 t.data 0 (Array.length t.data);
  t.staged <- saved.staged;
  t.accesses_this_cycle <- saved.accesses_this_cycle;
  t.port_violations <- saved.port_violations;
  t.reads <- saved.reads;
  t.writes <- saved.writes;
  t.wild_accesses <- saved.wild_accesses
