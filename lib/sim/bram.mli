(** Cycle-accurate block RAM.

    The physical array is padded to the next power of two and addresses
    wrap (the address bus has a fixed width): an out-of-range C index
    silently reads or clobbers padding — the hardware behaviour behind
    the paper's Figure 3 bug.  Reads return pre-cycle contents; stores
    are staged and applied by {!commit} (mixed-port read-during-write on
    a Stratix-II returns old data).  Per-cycle port usage is tracked so
    the engine can verify the scheduler's port guarantees at runtime. *)

type t = {
  name : string;
  logical_length : int;          (** the C array's declared length *)
  data : int64 array;            (** padded to a power of two *)
  mask : int;
  ports : int;
  mutable staged : (int * int64) list;
  mutable accesses_this_cycle : int;
  mutable port_violations : int;
  mutable reads : int;
  mutable writes : int;
  mutable wild_accesses : int;   (** accesses beyond [logical_length] *)
}

(** [create ?init ~name ~length ~ports ()] builds a RAM; [init] gives
    ROM contents (bitstream initialization). *)
val create : ?init:int64 list -> name:string -> length:int -> ports:int -> unit -> t

(** Synchronous read: pre-cycle value at the wrapped address; counts
    one port access. *)
val read : t -> int64 -> int64

(** Stage a write (applied at {!commit}); counts one port access. *)
val write : t -> int64 -> int64 -> unit

(** Replica mirror write (resource replication, Section 3.2): uses the
    replica's dedicated write port, so no port accounting. *)
val mirror_write : t -> int64 -> int64 -> unit

(** End of cycle: apply staged writes in program order, reset the
    per-cycle port counter. *)
val commit : t -> unit

(** Testbench access without port accounting. *)
val peek : t -> int -> int64

val poke : t -> int -> int64 -> unit

(** Deep copy (engine snapshots). *)
val copy : t -> t

(** Overwrite a live RAM's state from a saved copy; the copy is left
    untouched, so one snapshot can seed many restores. *)
val restore : t -> saved:t -> unit
