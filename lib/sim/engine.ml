(** Cycle-accurate simulation of a synthesized design.

    Executes the FSMDs of all hardware processes cycle by cycle against
    registered stream FIFOs and port-limited block RAMs, runs
    modulo-scheduled pipelined loops with overlapped iterations and
    rigid stalling, delivers assertion tap events to checker processes,
    and models the CPU side (testbench feeds/drains and the software
    assertion notification function) as end-of-cycle host handlers.

    This is the "in-circuit" execution of the paper: the behaviours that
    distinguish it from {!Interp} (software simulation) — bounded FIFOs,
    port contention, pipeline rates, injected translation faults, wild
    BRAM addresses — are exactly what in-circuit assertions catch. *)

module Ir = Mir.Ir
module Fsmd = Hls.Fsmd
module Value = Interp.Value
open Front.Ast

(* --- Configuration -------------------------------------------------------- *)

(** An assertion checker: a small pipelined process fed by a tap.  The
    condition is evaluated [latency] cycles after the tap fires; on
    failure the [code] word is sent on [channel] (a failure stream). *)
type checker = {
  cid : int;          (** assertion id (also the tap id it listens to) *)
  latency : int;
  eval : int64 array -> bool;  (** true = assertion holds *)
  channel : string;
  code : int64;       (** word pushed on failure (id, or bit mask when shared) *)
}

type host_action = [ `Ok | `Abort of string ]

(** Timing assertion (the paper's future work, Section 6): whenever tap
    [from_tap] fires, tap [to_tap] must fire within [budget] cycles.
    Checked in circuit like any other assertion; violations are reported
    through the result (and halt the run unless [soft]). *)
type timing_check = {
  tc_name : string;
  from_tap : int;
  to_tap : int;
  budget : int;
  soft : bool;  (** record but do not halt (NABORT-style) *)
}

type config = {
  max_cycles : int;
  feeds : (string * int64 list) list;  (** testbench input, one value/cycle *)
  drains : string list;                (** streams collected by the testbench *)
  handlers : (string * (int64 -> host_action)) list;
      (** CPU-side stream consumers (e.g. the assertion notification
          function); run at end of cycle, drain everything available *)
  hw_models : (string * (int64 list -> int64)) list;
      (** hardware behaviour of external HDL functions *)
  params : (string * (string * int64) list) list;
      (** per-process initial values of named registers *)
  timing_checks : timing_check list;
  trace : bool;
      (** capture a waveform of every FSM state and source-named
          register (the SignalTap/ChipScope view; see {!Trace}) *)
  host_poll_interval : int;
      (** cycles between host handler runs: 1 models an Impulse-C
          streaming bridge, larger values model a Carte-C style DMA
          mailbox the CPU polls (paper Section 4.3) *)
  watchdog : int option;
      (** live-lock watchdog: when [Some n], the run is stopped with
          {!Livelock} after [n] consecutive cycles without forward
          progress — no stream push/pop, no tap event, no register or
          memory value actually changing, no process halting.  A
          spinning loop (the Triple-DES hang of Section 5.1) keeps the
          FSM busy, so it never trips the no-activity {!Hang} detector
          and would otherwise burn the whole cycle budget. *)
  on_tap : (int -> int -> int64 array -> unit) option;
      (** external tap observer, called as [f cycle id values] on every
          tap execution before the checkers evaluate — lets a model
          checker compare its predicted fire schedule against the
          engine cycle for cycle *)
  on_site : (int -> int -> unit) option;
      (** fault-site activity observer, called as [f cycle site] when a
          marker tap (id >= {!marker_base}) executes.  Markers are pure
          probes: they bypass the checkers, the timing machinery and the
          watchdog's tap accounting entirely *)
}

let default_config =
  { max_cycles = 1_000_000; feeds = []; drains = []; handlers = []; hw_models = [];
    params = []; timing_checks = []; trace = false; host_poll_interval = 1;
    watchdog = None; on_tap = None; on_site = None }

(* Tap ids at or above this base are fault-site activity markers, not
   assertions.  Kept far above any real assertion id; Ir.validate
   enforces program-wide uniqueness either way. *)
let marker_base = 1_000_000

(* --- Results ---------------------------------------------------------------- *)

type pipe_stats = {
  ps_proc : string;
  ii_static : int;
  depth_static : int;
  issues : int;
  ii_measured : float;
  latency_measured : int;
}

type outcome =
  | Finished
  | Hang of (string * int) list  (** blocked processes and their state ids *)
  | Livelock of (string * int) list
      (** watchdog verdict: the named processes kept cycling through
          these states with no forward progress for the configured
          window — a spin that {!Out_of_cycles} would only surface
          after the whole budget *)
  | Aborted of string
  | Out_of_cycles
  | Sim_error of string

type result = {
  outcome : outcome;
  cycles : int;
  drained : (string * int64 list) list;
  host_log : string list;
  pipes : pipe_stats list;
  port_violations : (string * int) list;
  wild_accesses : (string * int) list;
  fifo_stats : (string * int * int * int) list;  (** name, pushes, pops, max occupancy *)
  tap_events : int;
  timing_violations : (string * int) list;
      (** timing-assertion name and the cycle at which it expired *)
  vcd : string option;  (** waveform dump when [trace] was enabled *)
}

(* --- Runtime state ----------------------------------------------------------- *)

type iter = {
  snapshot : int64 array;
  ctx : (Ir.reg, int64) Hashtbl.t;
  mutable cyc : int;
  issued_at : int;
  mutable pending : (Ir.reg * int64 * int) list;  (** extcall results: due iteration cycle *)
}

type pipe_rt = {
  pipe : Fsmd.pipe;
  mutable countdown : int;
  mutable done_issuing : bool;
  mutable inflight : iter list;  (** oldest first *)
  mutable issue_times : int list;  (** reverse order *)
  mutable latencies : int list;
  final_writes : (Ir.reg, int64) Hashtbl.t;
      (** last-retired value per register, applied when the pipe drains:
          late (non-loop-carried) writes must not clobber the issue-time
          architectural state while younger iterations are in flight *)
  stats_idx : int;
}

type mode = Seq | Pipe of pipe_rt | Halted

type pr = {
  fsmd : Fsmd.t;
  regs : int64 array;
  reg_ty : ty array;
  mutable state : int;
  mutable mode : mode;
  brams : (string, Bram.t) Hashtbl.t;
  mutable ext_pending : (Ir.reg * int64 * int) list;  (** due absolute cycle *)
  mutable entry_taps_fired : bool;
      (** operand-less marker taps of the current state already fired
          (they fire on state entry, even while a handshake stalls) *)
}

exception Abort_sim of string
exception Sim_failure of string

(* --- Instruction evaluation --------------------------------------------------- *)

(* Evaluate with an overlay: reads prefer overlay, then base; writes go
   to the overlay (committed by the caller). *)
let eval_operand ~read = function
  | Ir.Imm n -> n
  | Ir.Reg r -> read r

let guard_passes ~read (g : Ir.ginst) =
  match g.Ir.guard with
  | None -> true
  | Some (r, want) -> Value.to_bool (read r) = want

(* Execute one non-stream instruction.  Stream instructions are handled
   by the callers (they involve stall logic). *)
let exec_plain ~read ~write ~write_delayed ~bram ~tap ~models (g : Ir.ginst) =
  let ev = eval_operand ~read in
  match g.Ir.i with
  | Ir.Bin { dst; op; a; b; ty } -> (
      match Value.binop op ty (ev a) (ev b) with
      | v -> write dst v
      | exception Value.Division_by_zero ->
          raise (Sim_failure (Printf.sprintf "division by zero (r%d)" dst)))
  | Ir.Un { dst; op; a; ty } -> write dst (Value.unop op ty (ev a))
  | Ir.Copy { dst; src; ty } -> write dst (Value.wrap_ty ty (ev src))
  | Ir.Castop { dst; src; from_ty; to_ty } ->
      write dst (Value.cast ~from_ty ~to_ty (ev src))
  | Ir.Load { dst; mem; addr } -> write dst (Bram.read (bram mem) (ev addr))
  | Ir.Store { mem; addr; v } ->
      let b : Bram.t = bram mem in
      Bram.write b (ev addr) (ev v)
  | Ir.Extcall { dst; func; args; latency } -> (
      match List.assoc_opt func models with
      | Some f -> write_delayed dst (f (List.map ev args)) latency
      | None -> raise (Sim_failure (Printf.sprintf "no hardware model for extern %s" func)))
  | Ir.Tap { id; args } -> tap id (Array.of_list (List.map ev args))
  | Ir.Sread _ | Ir.Swrite _ -> invalid_arg "exec_plain: stream op"

(* --- The engine ------------------------------------------------------------- *)

type t = {
  cfg : config;
  fifos : (string, Fifo.t) Hashtbl.t;
  stream_elems : (string, ty) Hashtbl.t;
  procs : pr list;
  checkers : checker list;
  mutable cycle : int;
  mutable activity : bool;
  mutable progressed : bool;
      (** forward progress this cycle: some architectural value actually
          changed (register, FIFO contents, tap event, process halting).
          Distinct from [activity], which a spinning FSM also produces;
          the watchdog consumes the difference. *)
  mutable last_progress : int;  (** cycle of the last forward progress *)
  mutable tap_count : int;
  (* failure words awaiting their channel (after checker latency) *)
  mutable pending_failures : (int * string * int64) list;  (** due cycle, channel, word *)
  mutable host_log : string list;
  drained : (string, int64 list ref) Hashtbl.t;
  feeds_left : (string, int64 list ref) Hashtbl.t;
  mutable pipe_stats : pipe_stats array;
  (* timing assertions: outstanding deadlines per check, oldest first *)
  mutable deadlines : (timing_check * int) list;  (** check, expiry cycle *)
  mutable timing_violations : (string * int) list;
  tracer : (Trace.t * (pr * Trace.signal * (Ir.reg * Trace.signal) list) list) option;
      (** per process: FSM-state signal and one signal per named register *)
}

let make_proc cfg (fsmd : Fsmd.t) : pr =
  let proc = fsmd.Fsmd.proc in
  let nregs =
    List.fold_left (fun acc (r, _) -> Stdlib.max acc (r + 1)) 0 proc.Ir.regs
  in
  let regs = Array.make (Stdlib.max nregs 1) 0L in
  let reg_ty = Array.make (Stdlib.max nregs 1) int32_t in
  List.iter (fun (r, info) -> reg_ty.(r) <- info.Ir.rty) proc.Ir.regs;
  (* parameter initialization by origin name *)
  (match List.assoc_opt proc.Ir.name cfg.params with
  | Some bindings ->
      List.iter
        (fun (r, info) ->
          match info.Ir.origin with
          | Some name -> (
              match List.assoc_opt name bindings with
              | Some v -> regs.(r) <- Value.wrap_ty info.Ir.rty v
              | None -> ())
          | None -> ())
        proc.Ir.regs
  | None -> ());
  let brams = Hashtbl.create 4 in
  List.iter
    (fun (m : Ir.mem) ->
      Hashtbl.replace brams m.Ir.mname
        (Bram.create
           ?init:(Option.map (fun l -> l) m.Ir.rom_init)
           ~name:(proc.Ir.name ^ "." ^ m.Ir.mname) ~length:m.Ir.length
           ~ports:m.Ir.ports ()))
    proc.Ir.mems;
  { fsmd; regs; reg_ty; state = fsmd.Fsmd.entry; mode = Seq; brams; ext_pending = [];
    entry_taps_fired = false }

let create ?(cfg = default_config) ~(streams : stream_decl list)
    ~(fsmds : Fsmd.t list) ~(checkers : checker list) () : t =
  let fifos = Hashtbl.create 16 and stream_elems = Hashtbl.create 16 in
  List.iter
    (fun (s : stream_decl) ->
      Hashtbl.replace fifos s.sname (Fifo.create ~name:s.sname ~depth:s.depth);
      Hashtbl.replace stream_elems s.sname s.elem)
    streams;
  let drained = Hashtbl.create 4 in
  List.iter (fun s -> Hashtbl.replace drained s (ref [])) cfg.drains;
  let feeds_left = Hashtbl.create 4 in
  List.iter (fun (s, vs) -> Hashtbl.replace feeds_left s (ref vs)) cfg.feeds;
  let procs = List.map (make_proc cfg) fsmds in
  let tracer =
    if not cfg.trace then None
    else begin
      let tr = Trace.create () in
      let per_proc =
        List.map
          (fun (p : pr) ->
            let pname = p.fsmd.Fsmd.proc.Ir.name in
            let state_sig = Trace.declare tr ~name:(pname ^ ".state") ~width:16 in
            let reg_sigs =
              List.filter_map
                (fun (r, (info : Ir.reg_info)) ->
                  match info.Ir.origin with
                  | Some v ->
                      let width =
                        match info.Ir.rty with
                        | Tint (_, w) -> bits_of_width w
                        | Tbool -> 1
                        | _ -> 32
                      in
                      Some (r, Trace.declare tr ~name:(pname ^ "." ^ v) ~width)
                  | None -> None)
                p.fsmd.Fsmd.proc.Ir.regs
            in
            (p, state_sig, reg_sigs))
          procs
      in
      Some (tr, per_proc)
    end
  in
  {
    cfg;
    fifos;
    stream_elems;
    procs;
    checkers;
    cycle = 0;
    activity = false;
    progressed = false;
    last_progress = 0;
    tap_count = 0;
    pending_failures = [];
    host_log = [];
    drained;
    feeds_left;
    pipe_stats = [||];
    deadlines = [];
    timing_violations = [];
    tracer;
  }

let fifo t name =
  match Hashtbl.find_opt t.fifos name with
  | Some f -> f
  | None -> raise (Sim_failure (Printf.sprintf "unknown stream %s" name))

let wrap_stream t name v =
  match Hashtbl.find_opt t.stream_elems name with
  | Some ty -> Value.wrap_ty ty v
  | None -> v

(* Tap event: run the checkers listening on this tap id, and arm /
   discharge timing assertions anchored at it. *)
let deliver_tap t (id : int) (values : int64 array) =
  if id >= marker_base then begin
    (* site-activity marker: observe and return.  Must not count as a
       tap event (a marker inside a spin loop would otherwise defeat the
       live-lock watchdog) and must not touch checkers or deadlines. *)
    match t.cfg.on_site with
    | Some f -> f t.cycle (id - marker_base)
    | None -> ()
  end
  else begin
  t.tap_count <- t.tap_count + 1;
  (match t.cfg.on_tap with Some f -> f t.cycle id values | None -> ());
  List.iter
    (fun c ->
      if c.cid = id then
        if not (c.eval values) then
          t.pending_failures <-
            (t.cycle + c.latency, c.channel, c.code) :: t.pending_failures)
    t.checkers;
  (* a to-tap firing discharges the oldest outstanding deadline of each
     matching check; discharge before arming so a self-referential check
     (from = to) measures the interval between consecutive firings *)
  let discharged = ref [] in
  t.deadlines <-
    List.filter
      (fun ((tc : timing_check), _) ->
        if tc.to_tap = id && not (List.memq tc !discharged) then begin
          discharged := tc :: !discharged;
          false
        end
        else true)
      t.deadlines;
  List.iter
    (fun (tc : timing_check) ->
      if tc.from_tap = id then t.deadlines <- t.deadlines @ [ (tc, t.cycle + tc.budget) ])
    t.cfg.timing_checks
  end

(* --- Sequential state execution ---------------------------------------------- *)

(* Returns true when some register actually changed value — the forward
   progress signal the live-lock watchdog relies on. *)
let commit_overlay (p : pr) overlay =
  let changed = ref false in
  Hashtbl.iter
    (fun r v ->
      let v' = Value.wrap_ty p.reg_ty.(r) v in
      if p.regs.(r) <> v' then begin
        p.regs.(r) <- v';
        changed := true
      end)
    overlay;
  !changed

(* Returns true if the process advanced (activity). *)
let step_seq t (p : pr) =
  let st = p.fsmd.Fsmd.states.(p.state) in
  let overlay : (Ir.reg, int64) Hashtbl.t = Hashtbl.create 8 in
  let read r = match Hashtbl.find_opt overlay r with Some v -> v | None -> p.regs.(r) in
  let write r v = Hashtbl.replace overlay r v in
  let write_delayed r v latency =
    p.ext_pending <- (r, v, t.cycle + latency - 1) :: p.ext_pending
  in
  let bram m =
    match Hashtbl.find_opt p.brams m with
    | Some b -> b
    | None -> raise (Sim_failure (Printf.sprintf "unknown memory %s" m))
  in
  (* stream states are exclusive: check stall *)
  let stream_op =
    List.find_opt (fun (g : Ir.ginst) -> Ir.is_stream_op g.Ir.i) st.Fsmd.ops
  in
  let advance () =
    match st.Fsmd.next with
    | Fsmd.Goto n -> p.state <- n; true
    | Fsmd.Branch (c, a, b) ->
        p.state <- (if Value.to_bool (read c) then a else b);
        true
    | Fsmd.Enter_pipe pid ->
        let pipe = p.fsmd.Fsmd.pipes.(pid) in
        let stats_idx =
          (* position of this pipe in the global stats table *)
          let rec find i acc (ps : pr list) =
            match ps with
            | [] -> acc
            | q :: rest ->
                if q == p then acc + pid
                else find i (acc + Array.length q.fsmd.Fsmd.pipes) rest
          in
          find 0 0 t.procs
        in
        p.mode <-
          Pipe
            {
              pipe;
              countdown = 0;
              done_issuing = false;
              inflight = [];
              issue_times = [];
              latencies = [];
              final_writes = Hashtbl.create 16;
              stats_idx;
            };
        true
    | Fsmd.Done ->
        p.mode <- Halted;
        t.progressed <- true;
        true
  in
  (* taps may share a stream handshake state (they are pure latches).
     Operand-less markers that precede the stream op in program order
     mark a point reached on state *entry* — they fire even while the
     handshake stalls; markers after it, and data taps, fire only once
     the handshake succeeds. *)
  let stream_pos =
    let rec go i = function
      | [] -> max_int
      | (g : Ir.ginst) :: rest -> if Ir.is_stream_op g.Ir.i then i else go (i + 1) rest
    in
    go 0 st.Fsmd.ops
  in
  let run_taps ~phase =
    List.iteri
      (fun pos (g : Ir.ginst) ->
        let fire =
          match g.Ir.i with
          | Ir.Tap { args; _ } when guard_passes ~read g -> (
              let entry_marker = args = [] && pos < stream_pos in
              match phase with
              | `Stall -> entry_marker && not p.entry_taps_fired
              | `Success -> (not entry_marker) || not p.entry_taps_fired)
          | _ -> false
        in
        if fire then
          exec_plain ~read ~write ~write_delayed ~bram ~tap:(deliver_tap t)
            ~models:t.cfg.hw_models g)
      st.Fsmd.ops
  in
  let note_advanced () = p.entry_taps_fired <- false in
  match stream_op with
  | Some g -> (
      match g.Ir.i with
      | Ir.Sread { dst; stream } ->
          let f = fifo t stream in
          if Fifo.can_pop f then begin
            (* wrap to the destination register's width here, not just at
               overlay commit: same-state consumers (taps) read the
               overlay value *)
            write dst (Value.wrap_ty p.reg_ty.(dst) (Fifo.pop f));
            t.progressed <- true;
            run_taps ~phase:`Success;
            if commit_overlay p overlay then t.progressed <- true;
            ignore (advance ());
            note_advanced ();
            true
          end
          else begin
            (* stalled: marker taps still fire once on entry *)
            run_taps ~phase:`Stall;
            p.entry_taps_fired <- true;
            false
          end
      | Ir.Swrite { stream; v } ->
          let f = fifo t stream in
          if Fifo.can_push f then begin
            if guard_passes ~read g then begin
              Fifo.push f (wrap_stream t stream (eval_operand ~read v));
              t.progressed <- true
            end;
            run_taps ~phase:`Success;
            if commit_overlay p overlay then t.progressed <- true;
            ignore (advance ());
            note_advanced ();
            true
          end
          else begin
            run_taps ~phase:`Stall;
            p.entry_taps_fired <- true;
            false
          end
      | _ -> assert false)
  | None ->
      List.iter
        (fun (g : Ir.ginst) ->
          if guard_passes ~read g then
            exec_plain ~read ~write ~write_delayed ~bram ~tap:(deliver_tap t)
              ~models:t.cfg.hw_models g)
        st.Fsmd.ops;
      (* memory writes bypass the overlay; count them as progress rather
         than comparing staged BRAM contents *)
      if
        List.exists
          (fun (g : Ir.ginst) ->
            match g.Ir.i with Ir.Store _ -> guard_passes ~read g | _ -> false)
          st.Fsmd.ops
      then t.progressed <- true;
      if commit_overlay p overlay then t.progressed <- true;
      ignore (advance ());
      true

(* --- Pipelined loop execution -------------------------------------------------- *)

(* Evaluate issue-time instructions (cond or step) directly on the
   architectural registers: they are pure ALU by construction. *)
let eval_issue_insts t (p : pr) (insts : Ir.ginst list) =
  let overlay = Hashtbl.create 8 in
  let read r = match Hashtbl.find_opt overlay r with Some v -> v | None -> p.regs.(r) in
  let write r v = Hashtbl.replace overlay r v in
  List.iter
    (fun (g : Ir.ginst) ->
      if guard_passes ~read g then
        exec_plain ~read ~write
          ~write_delayed:(fun _ _ _ -> ())
          ~bram:(fun m -> raise (Sim_failure ("memory op at issue: " ^ m)))
            (* real taps are pure latches and never scheduled at issue
               time, but loop-site activity markers do live in the
               condition block — let those through *)
          ~tap:(fun id vs -> if id >= marker_base then deliver_tap t id vs)
          ~models:[] g)
    insts;
  if commit_overlay p overlay then t.progressed <- true;
  read

(* Stream requirements of one iteration at its current cycle (guard-aware). *)
let iter_stream_needs (pipe : Fsmd.pipe) (it : iter) =
  if it.cyc >= pipe.Fsmd.depth then []
  else
    let read r =
      match Hashtbl.find_opt it.ctx r with
      | Some v -> v
      | None -> it.snapshot.(r)
    in
    List.filter_map
      (fun (g : Ir.ginst) ->
        if not (guard_passes ~read g) then None
        else
          match g.Ir.i with
          | Ir.Sread { stream; _ } -> Some (`Read stream)
          | Ir.Swrite { stream; _ } -> Some (`Write stream)
          | _ -> None)
      pipe.Fsmd.cycle_ops.(it.cyc)

let step_pipe t (p : pr) (rt : pipe_rt) =
  let pipe = rt.pipe in
  (* 1. stall check: every stream op due this cycle must be ready *)
  let needs = List.concat_map (fun it -> iter_stream_needs pipe it) rt.inflight in
  let satisfied =
    List.for_all
      (function
        | `Read s -> Fifo.can_pop (fifo t s)
        | `Write s -> Fifo.can_push (fifo t s))
      needs
  in
  if not satisfied then false
  else begin
    let ii = pipe.Fsmd.ii in
    (* 2. advance in-flight iterations, oldest first *)
    List.iter
      (fun it ->
        (* deliver pending extcall results due at this iteration cycle *)
        it.pending <-
          List.filter
            (fun (r, v, due) ->
              if due <= it.cyc then begin
                Hashtbl.replace it.ctx r v;
                if it.cyc <= ii - 1 then p.regs.(r) <- Value.wrap_ty p.reg_ty.(r) v;
                false
              end
              else true)
            it.pending;
        let read r =
          match Hashtbl.find_opt it.ctx r with
          | Some v -> v
          | None -> it.snapshot.(r)
        in
        let write r v =
          let v' = Value.wrap_ty p.reg_ty.(r) v in
          if read r <> v' then t.progressed <- true;
          Hashtbl.replace it.ctx r v';
          if it.cyc <= ii - 1 then p.regs.(r) <- v'
        in
        let write_delayed r v latency = it.pending <- (r, v, it.cyc + latency) :: it.pending in
        let bram m =
          match Hashtbl.find_opt p.brams m with
          | Some b -> b
          | None -> raise (Sim_failure (Printf.sprintf "unknown memory %s" m))
        in
        List.iter
          (fun (g : Ir.ginst) ->
            if guard_passes ~read g then
              match g.Ir.i with
              | Ir.Sread { dst; stream } ->
                  write dst (Value.wrap_ty p.reg_ty.(dst) (Fifo.pop (fifo t stream)));
                  t.progressed <- true
              | Ir.Swrite { stream; v } ->
                  Fifo.push (fifo t stream)
                    (wrap_stream t stream (eval_operand ~read v));
                  t.progressed <- true
              | _ ->
                  exec_plain ~read ~write ~write_delayed ~bram ~tap:(deliver_tap t)
                    ~models:t.cfg.hw_models g)
          pipe.Fsmd.cycle_ops.(it.cyc);
        it.cyc <- it.cyc + 1)
      rt.inflight;
    (* 3. retire completed iterations (oldest first), flushing contexts *)
    let retired, live = List.partition (fun it -> it.cyc >= pipe.Fsmd.depth) rt.inflight in
    List.iter
      (fun it ->
        Hashtbl.iter (fun r v -> Hashtbl.replace rt.final_writes r v) it.ctx;
        rt.latencies <- (t.cycle - it.issued_at) :: rt.latencies)
      retired;
    rt.inflight <- live;
    (* 4. issue a new iteration when the slot opens *)
    if rt.countdown > 0 then rt.countdown <- rt.countdown - 1;
    if (not rt.done_issuing) && rt.countdown = 0 then begin
      let read = eval_issue_insts t p pipe.Fsmd.cond_insts in
      if Value.to_bool (read pipe.Fsmd.cond) then begin
        let it =
          {
            snapshot = Array.copy p.regs;
            ctx = Hashtbl.create 8;
            cyc = 0;
            issued_at = t.cycle;
            pending = [];
          }
        in
        rt.inflight <- rt.inflight @ [ it ];
        rt.issue_times <- t.cycle :: rt.issue_times;
        let (_ : Ir.reg -> int64) = eval_issue_insts t p pipe.Fsmd.step_insts in
        rt.countdown <- ii
      end
      else rt.done_issuing <- true
    end;
    (* 5. drained? *)
    if rt.done_issuing && rt.inflight = [] then begin
      Hashtbl.iter (fun r v -> p.regs.(r) <- Value.wrap_ty p.reg_ty.(r) v) rt.final_writes;
      (* record stats *)
      let issues = List.length rt.issue_times in
      let times = List.rev rt.issue_times in
      let ii_measured =
        match times with
        | [] | [ _ ] -> float_of_int ii
        | first :: _ ->
            let last = List.nth times (issues - 1) in
            float_of_int (last - first) /. float_of_int (issues - 1)
      in
      let latency_measured =
        List.fold_left Stdlib.max 0 rt.latencies
      in
      if rt.stats_idx < Array.length t.pipe_stats then
        t.pipe_stats.(rt.stats_idx) <-
          {
            ps_proc = p.fsmd.Fsmd.proc.Ir.name;
            ii_static = ii;
            depth_static = pipe.Fsmd.depth;
            issues;
            ii_measured;
            latency_measured;
          };
      p.mode <- Seq;
      p.state <- pipe.Fsmd.exit_to;
      t.progressed <- true
    end;
    true
  end

(* --- Main loop ------------------------------------------------------------------ *)

let total_pipes t =
  List.fold_left (fun acc p -> acc + Array.length p.fsmd.Fsmd.pipes) 0 t.procs

let blocked_info t =
  List.filter_map
    (fun p -> match p.mode with Halted -> None | _ -> Some (p.fsmd.Fsmd.proc.Ir.name, p.state))
    t.procs

(* --- blocked-channel attribution ------------------------------------------- *)

(* Which channel op a stalled FSMD state is waiting on.  A state can
   only block on a stream read (empty FIFO) or a stream write (full
   FIFO); scan its ops for the first one.  Lets hang reports name the
   channel, not just a state id. *)
let blocked_channel (f : Fsmd.t) (state : int) : (string * [ `Read | `Write ]) option =
  if state < 0 || state >= Array.length f.Fsmd.states then None
  else
    List.find_map
      (fun (g : Ir.ginst) ->
        match g.Ir.i with
        | Ir.Sread { stream; _ } -> Some (stream, `Read)
        | Ir.Swrite { stream; _ } -> Some (stream, `Write)
        | _ -> None)
      f.Fsmd.states.(state).Fsmd.ops

let describe_blocked (fsmds : Fsmd.t list) (blocked : (string * int) list) : string list =
  List.map
    (fun (proc, state) ->
      let fallback = Printf.sprintf "%s blocked in state %d" proc state in
      match List.find_opt (fun (f : Fsmd.t) -> f.Fsmd.proc.Ir.name = proc) fsmds with
      | None -> fallback
      | Some f -> (
          match blocked_channel f state with
          | Some (s, `Read) ->
              Printf.sprintf "%s blocked reading stream \"%s\" (state %d)" proc s state
          | Some (s, `Write) ->
              Printf.sprintf "%s blocked writing stream \"%s\" (state %d)" proc s state
          | None -> fallback))
    blocked

(* Allocate the pipe-stats table once; [run] after a {!restore} (or a
   second [run_until] leg) must keep the restored contents. *)
let ensure_pipe_stats t =
  if Array.length t.pipe_stats <> total_pipes t then
    t.pipe_stats <-
      Array.make (total_pipes t)
        { ps_proc = ""; ii_static = 0; depth_static = 0; issues = 0; ii_measured = 0.0;
          latency_measured = 0 }

(* Execute one full clock cycle; sets [outcome] when the cycle decides
   the run.  The cycle counter advances unconditionally at the end, so
   [result.cycles] counts executed cycles exactly as before. *)
let exec_cycle (t : t) (outcome : outcome option ref) =
  begin
         t.activity <- false;
         t.progressed <- false;
         let taps_before = t.tap_count in
         (* 1. testbench feeds: at most one value per stream per cycle *)
         Hashtbl.iter
           (fun s vs ->
             match !vs with
             | [] -> ()
             | v :: rest ->
                 let f = fifo t s in
                 if Fifo.can_push f then begin
                   Fifo.push f (wrap_stream t s v);
                   vs := rest;
                   t.activity <- true;
                   t.progressed <- true
                 end)
           t.feeds_left;
         (* 2. hardware processes *)
         List.iter
           (fun p ->
             (* deliver due extcall results *)
             p.ext_pending <-
               List.filter
                 (fun (r, v, due) ->
                   if due <= t.cycle then begin
                     let v' = Value.wrap_ty p.reg_ty.(r) v in
                     if p.regs.(r) <> v' then t.progressed <- true;
                     p.regs.(r) <- v';
                     false
                   end
                   else true)
                 p.ext_pending;
             match p.mode with
             | Halted -> ()
             | Seq -> if step_seq t p then t.activity <- true
             | Pipe rt -> if step_pipe t p rt then t.activity <- true)
           t.procs;
         (* 3. checker failure words whose latency elapsed *)
         let due, later =
           List.partition (fun (d, _, _) -> d <= t.cycle) t.pending_failures
         in
         t.pending_failures <- later;
         List.iter
           (fun (_, channel, word) ->
             let f = fifo t channel in
             if Fifo.can_push f then begin
               Fifo.push f word;
               t.activity <- true;
               t.progressed <- true
             end
             else (* channel busy: retry next cycle (round-robin backpressure) *)
               t.pending_failures <- (t.cycle + 1, channel, word) :: t.pending_failures)
           due;
         (* 3b. expired timing assertions *)
         let expired, live =
           List.partition (fun (_, expiry) -> expiry <= t.cycle) t.deadlines
         in
         t.deadlines <- live;
         List.iter
           (fun ((tc : timing_check), _) ->
             t.timing_violations <- (tc.tc_name, t.cycle) :: t.timing_violations;
             if not tc.soft && !outcome = None then
               outcome :=
                 Some
                   (Aborted
                      (Printf.sprintf
                         "timing assertion `%s' failed: tap %d not reached within %d cycles"
                         tc.tc_name tc.to_tap tc.budget)))
           expired;
         (* 4. end of cycle: commit fifos and brams *)
         Hashtbl.iter (fun _ f -> Fifo.commit f) t.fifos;
         List.iter (fun p -> Hashtbl.iter (fun _ b -> Bram.commit b) p.brams) t.procs;
         (* 4b. waveform sampling *)
         (match t.tracer with
         | Some (tr, per_proc) ->
             List.iter
               (fun ((p : pr), state_sig, reg_sigs) ->
                 Trace.sample tr state_sig ~cycle:t.cycle (Int64.of_int p.state);
                 List.iter
                   (fun (r, s) -> Trace.sample tr s ~cycle:t.cycle p.regs.(r))
                   reg_sigs)
               per_proc
         | None -> ());
         (* 5. CPU side: notification handlers (every poll interval,
            modelling streaming vs DMA-mailbox transports), then
            testbench drains *)
         if t.cycle mod Stdlib.max 1 t.cfg.host_poll_interval = 0 then
           List.iter
             (fun (s, handler) ->
               let f = fifo t s in
               while Fifo.can_pop f && !outcome = None do
                 t.activity <- true;
                 t.progressed <- true;
                 match handler (Fifo.pop f) with
                 | `Ok -> ()
                 | `Abort msg ->
                     t.host_log <- msg :: t.host_log;
                     outcome := Some (Aborted msg)
               done)
             t.cfg.handlers;
         Hashtbl.iter
           (fun s acc ->
             let f = fifo t s in
             while Fifo.can_pop f do
               t.activity <- true;
               t.progressed <- true;
               acc := Fifo.pop f :: !acc
             done)
           t.drained;
         (* 6. termination / hang detection *)
         if !outcome = None then begin
           let all_halted = List.for_all (fun p -> p.mode = Halted) t.procs in
           let handler_data_pending =
             t.cfg.host_poll_interval > 1
             && List.exists (fun (s, _) -> Fifo.can_pop (fifo t s)) t.cfg.handlers
           in
           if all_halted && t.pending_failures = [] && not handler_data_pending then
             outcome := Some Finished
           else if
             (not t.activity) && t.pending_failures = [] && t.deadlines = []
             && not handler_data_pending
           then
             (* outstanding timing assertions keep the clock running so a
                hang is reported as the timing failure it is *)
             outcome := Some (Hang (blocked_info t))
           else begin
             (* live-lock watchdog: the FSMs are busy (activity) but no
                architectural value has changed for a whole window — a
                spin that would otherwise only surface as Out_of_cycles
                after the full budget.  Outstanding deadlines keep it at
                bay so timing assertions report first. *)
             if t.progressed || t.tap_count > taps_before then
               t.last_progress <- t.cycle;
             match t.cfg.watchdog with
             | Some n when t.deadlines = [] && t.cycle - t.last_progress >= n ->
                 outcome := Some (Livelock (blocked_info t))
             | _ -> ()
           end
         end;
         t.cycle <- t.cycle + 1
  end

let run_loop t ~stop (outcome : outcome option ref) =
  try
    while !outcome = None && not (stop ()) do
      if t.cycle >= t.cfg.max_cycles then outcome := Some Out_of_cycles
      else exec_cycle t outcome
    done
  with
  | Sim_failure msg -> outcome := Some (Sim_error msg)
  | Abort_sim msg -> outcome := Some (Aborted msg)

(** Run forward until the start of [cycle] (exclusive: cycles
    [0..cycle-1] have executed and committed).  Returns [Some outcome]
    if the design terminated first, [None] when paused at the target —
    the state is then exactly the start-of-cycle state a later {!run}
    continues from. *)
let run_until (t : t) ~cycle : outcome option =
  ensure_pipe_stats t;
  let outcome = ref None in
  run_loop t ~stop:(fun () -> t.cycle >= cycle) outcome;
  !outcome

let collect (t : t) (outcome : outcome) : result =
  let drained =
    Hashtbl.fold (fun s acc l -> (s, List.rev !acc) :: l) t.drained []
    |> List.sort compare
  in
  let port_violations =
    List.concat_map
      (fun p ->
        Hashtbl.fold
          (fun _ (b : Bram.t) acc ->
            if b.Bram.port_violations > 0 then (b.Bram.name, b.Bram.port_violations) :: acc
            else acc)
          p.brams [])
      t.procs
  in
  let wild =
    List.concat_map
      (fun p ->
        Hashtbl.fold
          (fun _ (b : Bram.t) acc ->
            if b.Bram.wild_accesses > 0 then (b.Bram.name, b.Bram.wild_accesses) :: acc
            else acc)
          p.brams [])
      t.procs
  in
  let fifo_stats =
    Hashtbl.fold
      (fun _ (f : Fifo.t) acc ->
        (f.Fifo.name, f.Fifo.pushes, f.Fifo.pops, f.Fifo.max_occupancy) :: acc)
      t.fifos []
    |> List.sort compare
  in
  {
    outcome;
    cycles = t.cycle;
    drained;
    host_log = List.rev t.host_log;
    pipes = Array.to_list t.pipe_stats;
    port_violations;
    wild_accesses = wild;
    fifo_stats;
    tap_events = t.tap_count;
    timing_violations = List.rev t.timing_violations;
    vcd = (match t.tracer with Some (tr, _) -> Some (Trace.to_vcd tr) | None -> None);
  }

let run (t : t) : result =
  ensure_pipe_stats t;
  let outcome = ref None in
  run_loop t ~stop:(fun () -> false) outcome;
  collect t (match !outcome with Some o -> o | None -> Finished)

let current_cycle t = t.cycle

(* --- Snapshots ----------------------------------------------------------------- *)

(* A deep, closure-free copy of all mutable engine state, suitable for
   Marshal (the campaign persists baseline snapshots in the artifact
   store).  Hash tables are flattened to sorted assoc lists so equal
   states produce structurally equal snapshots; the live [pipe_rt] is
   referenced by its index in the owning process's pipe table. *)
type iter_snap = {
  isn_snapshot : int64 array;
  isn_ctx : (Ir.reg * int64) list;
  isn_cyc : int;
  isn_issued_at : int;
  isn_pending : (Ir.reg * int64 * int) list;
}

type pipe_snap = {
  psn_pipe : int;  (** index into the process's [Fsmd.pipes] *)
  psn_countdown : int;
  psn_done_issuing : bool;
  psn_inflight : iter_snap list;
  psn_issue_times : int list;
  psn_latencies : int list;
  psn_final_writes : (Ir.reg * int64) list;
  psn_stats_idx : int;
}

type mode_snap = Snap_seq | Snap_pipe of pipe_snap | Snap_halted

type proc_snap = {
  sp_regs : int64 array;
  sp_state : int;
  sp_mode : mode_snap;
  sp_brams : (string * Bram.t) list;  (** deep copies *)
  sp_ext_pending : (Ir.reg * int64 * int) list;
  sp_entry_taps_fired : bool;
}

type snapshot = {
  sn_cycle : int;
  sn_activity : bool;
  sn_progressed : bool;
  sn_last_progress : int;
  sn_tap_count : int;
  sn_pending_failures : (int * string * int64) list;
  sn_host_log : string list;
  sn_fifos : (string * Fifo.t) list;  (** deep copies *)
  sn_drained : (string * int64 list) list;  (** newest first, as stored *)
  sn_feeds_left : (string * int64 list) list;
  sn_procs : proc_snap list;  (** in [t.procs] order *)
  sn_pipe_stats : pipe_stats array;
  sn_deadlines : (timing_check * int) list;
  sn_timing_violations : (string * int) list;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let snapshot (t : t) : snapshot =
  let snap_iter (it : iter) =
    {
      isn_snapshot = Array.copy it.snapshot;
      isn_ctx = sorted_bindings it.ctx;
      isn_cyc = it.cyc;
      isn_issued_at = it.issued_at;
      isn_pending = it.pending;
    }
  in
  let snap_proc (p : pr) =
    let sp_mode =
      match p.mode with
      | Seq -> Snap_seq
      | Halted -> Snap_halted
      | Pipe rt ->
          let idx = ref (-1) in
          Array.iteri (fun i q -> if q == rt.pipe then idx := i) p.fsmd.Fsmd.pipes;
          Snap_pipe
            {
              psn_pipe = !idx;
              psn_countdown = rt.countdown;
              psn_done_issuing = rt.done_issuing;
              psn_inflight = List.map snap_iter rt.inflight;
              psn_issue_times = rt.issue_times;
              psn_latencies = rt.latencies;
              psn_final_writes = sorted_bindings rt.final_writes;
              psn_stats_idx = rt.stats_idx;
            }
    in
    {
      sp_regs = Array.copy p.regs;
      sp_state = p.state;
      sp_mode;
      sp_brams =
        Hashtbl.fold (fun n b acc -> (n, Bram.copy b) :: acc) p.brams []
        |> List.sort compare;
      sp_ext_pending = p.ext_pending;
      sp_entry_taps_fired = p.entry_taps_fired;
    }
  in
  {
    sn_cycle = t.cycle;
    sn_activity = t.activity;
    sn_progressed = t.progressed;
    sn_last_progress = t.last_progress;
    sn_tap_count = t.tap_count;
    sn_pending_failures = t.pending_failures;
    sn_host_log = t.host_log;
    sn_fifos =
      Hashtbl.fold (fun n f acc -> (n, Fifo.copy f) :: acc) t.fifos []
      |> List.sort compare;
    sn_drained =
      Hashtbl.fold (fun s acc l -> (s, !acc) :: l) t.drained [] |> List.sort compare;
    sn_feeds_left =
      Hashtbl.fold (fun s vs l -> (s, !vs) :: l) t.feeds_left [] |> List.sort compare;
    sn_procs = List.map snap_proc t.procs;
    sn_pipe_stats = Array.copy t.pipe_stats;
    sn_deadlines = t.deadlines;
    sn_timing_violations = t.timing_violations;
  }

(* Restoring never aliases snapshot-owned arrays or tables, so one
   snapshot can seed any number of runs. *)
let restore (t : t) (s : snapshot) =
  t.cycle <- s.sn_cycle;
  t.activity <- s.sn_activity;
  t.progressed <- s.sn_progressed;
  t.last_progress <- s.sn_last_progress;
  t.tap_count <- s.sn_tap_count;
  t.pending_failures <- s.sn_pending_failures;
  t.host_log <- s.sn_host_log;
  List.iter (fun (n, saved) -> Fifo.restore (fifo t n) ~saved) s.sn_fifos;
  List.iter
    (fun (n, l) ->
      match Hashtbl.find_opt t.drained n with
      | Some r -> r := l
      | None -> Hashtbl.replace t.drained n (ref l))
    s.sn_drained;
  Hashtbl.reset t.feeds_left;
  List.iter (fun (n, l) -> Hashtbl.replace t.feeds_left n (ref l)) s.sn_feeds_left;
  (if List.length t.procs <> List.length s.sn_procs then
     raise (Sim_failure "snapshot restore: process count mismatch"));
  List.iter2
    (fun (p : pr) (sp : proc_snap) ->
      (if Array.length p.regs <> Array.length sp.sp_regs then
         raise (Sim_failure "snapshot restore: register file mismatch"));
      Array.blit sp.sp_regs 0 p.regs 0 (Array.length p.regs);
      p.state <- sp.sp_state;
      (p.mode <-
         (match sp.sp_mode with
         | Snap_seq -> Seq
         | Snap_halted -> Halted
         | Snap_pipe ps ->
             let pipe = p.fsmd.Fsmd.pipes.(ps.psn_pipe) in
             let final_writes = Hashtbl.create 16 in
             List.iter (fun (r, v) -> Hashtbl.replace final_writes r v) ps.psn_final_writes;
             Pipe
               {
                 pipe;
                 countdown = ps.psn_countdown;
                 done_issuing = ps.psn_done_issuing;
                 inflight =
                   List.map
                     (fun isn ->
                       let ctx = Hashtbl.create 8 in
                       List.iter (fun (r, v) -> Hashtbl.replace ctx r v) isn.isn_ctx;
                       {
                         snapshot = Array.copy isn.isn_snapshot;
                         ctx;
                         cyc = isn.isn_cyc;
                         issued_at = isn.isn_issued_at;
                         pending = isn.isn_pending;
                       })
                     ps.psn_inflight;
                 issue_times = ps.psn_issue_times;
                 latencies = ps.psn_latencies;
                 final_writes;
                 stats_idx = ps.psn_stats_idx;
               }));
      List.iter (fun (n, saved) -> Bram.restore (Hashtbl.find p.brams n) ~saved) sp.sp_brams;
      p.ext_pending <- sp.sp_ext_pending;
      p.entry_taps_fired <- sp.sp_entry_taps_fired)
    t.procs s.sn_procs;
  t.pipe_stats <- Array.copy s.sn_pipe_stats;
  t.deadlines <- s.sn_deadlines;
  t.timing_violations <- s.sn_timing_violations

(* Patch named registers in place (same binding shape as [cfg.params]).
   Used to arm padded fault sites after a restore: the fault registers
   are never written by the program, but pipelined iterations in flight
   hold frozen register copies — patch those too. *)
let arm (t : t) (params : (string * (string * int64) list) list) =
  List.iter
    (fun (p : pr) ->
      match List.assoc_opt p.fsmd.Fsmd.proc.Ir.name params with
      | None -> ()
      | Some bindings ->
          List.iter
            (fun (r, (info : Ir.reg_info)) ->
              match info.Ir.origin with
              | Some name -> (
                  match List.assoc_opt name bindings with
                  | Some v ->
                      let v' = Value.wrap_ty info.Ir.rty v in
                      p.regs.(r) <- v';
                      (match p.mode with
                      | Pipe rt ->
                          List.iter
                            (fun it ->
                              if r < Array.length it.snapshot then it.snapshot.(r) <- v';
                              Hashtbl.remove it.ctx r)
                            rt.inflight
                      | _ -> ())
                  | None -> ())
              | None -> ())
            p.fsmd.Fsmd.proc.Ir.regs)
    t.procs

(** Convenience: build and run in one call. *)
let simulate ?cfg ~streams ~fsmds ?(checkers = []) () =
  run (create ?cfg ~streams ~fsmds ~checkers ())
