(** Cycle-accurate simulation of a synthesized design.

    Executes the FSMDs of all hardware processes cycle by cycle against
    registered stream FIFOs and port-limited block RAMs, runs
    modulo-scheduled pipelined loops with overlapped iterations and
    rigid stalling, delivers assertion tap events to checker processes,
    and models the CPU side (testbench feeds/drains and the software
    assertion notification function) as end-of-cycle host handlers.

    This is the "in-circuit" execution of the paper: the behaviours that
    distinguish it from {!Interp} (software simulation) — bounded FIFOs,
    port contention, pipeline rates, injected translation faults, wild
    BRAM addresses — are exactly what in-circuit assertions catch. *)

module Ir = Mir.Ir

(** An assertion checker: a small pipelined process fed by a tap.  The
    condition is evaluated [latency] cycles after the tap fires; on
    failure the [code] word is sent on [channel] (a failure stream). *)
type checker = {
  cid : int;          (** assertion id (also the tap id it listens to) *)
  latency : int;
  eval : int64 array -> bool;  (** true = assertion holds *)
  channel : string;
  code : int64;       (** word pushed on failure (id, or bit mask when shared) *)
}

type host_action = [ `Abort of string | `Ok ]

(** Timing assertion (the paper's future work, Section 6): whenever tap
    [from_tap] fires, tap [to_tap] must fire within [budget] cycles.
    With [from_tap = to_tap] it bounds the interval between consecutive
    firings.  Violations halt the run unless [soft]. *)
type timing_check = {
  tc_name : string;
  from_tap : int;
  to_tap : int;
  budget : int;
  soft : bool;
}

type config = {
  max_cycles : int;
  feeds : (string * int64 list) list;  (** testbench input, one value/cycle *)
  drains : string list;                (** streams collected by the testbench *)
  handlers : (string * (int64 -> host_action)) list;
      (** CPU-side stream consumers, run at end of cycle *)
  hw_models : (string * (int64 list -> int64)) list;
      (** hardware behaviour of external HDL functions *)
  params : (string * (string * int64) list) list;
      (** per-process initial values of named registers *)
  timing_checks : timing_check list;
  trace : bool;  (** capture a VCD waveform (the SignalTap view) *)
  host_poll_interval : int;
      (** cycles between host handler runs: 1 models an Impulse-C
          streaming bridge; larger values model a Carte-C style DMA
          mailbox the CPU polls (paper Section 4.3) *)
  watchdog : int option;
      (** live-lock watchdog: when [Some n], stop with {!Livelock} after
          [n] consecutive cycles of no forward progress — no stream
          push/pop, no tap event, no register/memory value change, no
          process halting.  Catches spinning loops (the Triple-DES hang)
          in thousands rather than millions of cycles. *)
  on_tap : (int -> int -> int64 array -> unit) option;
      (** external tap observer, called as [f cycle id values] on every
          tap execution before the checkers evaluate — lets a model
          checker compare its predicted fire schedule against the
          engine cycle for cycle *)
  on_site : (int -> int -> unit) option;
      (** fault-site activity observer, called as [f cycle site] when a
          marker tap with id [marker_base + site] executes.  Markers
          bypass checkers, deadlines and the watchdog's tap count. *)
}

val default_config : config

(** Tap ids at or above this base are fault-site activity markers, not
    assertions; they are invisible to checkers and statistics. *)
val marker_base : int

type pipe_stats = {
  ps_proc : string;
  ii_static : int;
  depth_static : int;
  issues : int;
  ii_measured : float;        (** mean issue distance, measured *)
  latency_measured : int;     (** worst iteration latency, measured *)
}

type outcome =
  | Finished
  | Hang of (string * int) list  (** blocked processes and their state ids *)
  | Livelock of (string * int) list
      (** watchdog verdict: these processes kept cycling with no forward
          progress for the configured window (spinning process, state) *)
  | Aborted of string
  | Out_of_cycles
  | Sim_error of string

type result = {
  outcome : outcome;
  cycles : int;
  drained : (string * int64 list) list;
  host_log : string list;
  pipes : pipe_stats list;
  port_violations : (string * int) list;
  wild_accesses : (string * int) list;
  fifo_stats : (string * int * int * int) list;
      (** name, pushes, pops, max occupancy *)
  tap_events : int;
  timing_violations : (string * int) list;
      (** timing-assertion name and expiry cycle *)
  vcd : string option;  (** waveform dump when [trace] was enabled *)
}

type t

exception Abort_sim of string
exception Sim_failure of string

val create :
  ?cfg:config ->
  streams:Front.Ast.stream_decl list ->
  fsmds:Hls.Fsmd.t list ->
  checkers:checker list ->
  unit ->
  t

(** Run to completion (or hang / abort / cycle budget). *)
val run : t -> result

(** Which channel op FSMD state [state] waits on: the first stream
    read/write among the state's ops, or [None] for a state that cannot
    block on a channel.  Hang reports use it to name the blocking
    channel instead of a bare state id. *)
val blocked_channel : Hls.Fsmd.t -> int -> (string * [ `Read | `Write ]) option

(** One "proc blocked reading stream \"s\" (state N)" line per blocked
    (process, state) pair of a {!Hang} outcome, falling back to the bare
    state id when the state holds no channel op. *)
val describe_blocked : Hls.Fsmd.t list -> (string * int) list -> string list

(** Run forward until the start of [cycle] (cycles [0..cycle-1] have
    executed and committed).  Returns [Some outcome] if the design
    terminated first, [None] when paused at the target; a later {!run}
    (or {!run_until}) continues from exactly that state. *)
val run_until : t -> cycle:int -> outcome option

(** Cycles executed so far. *)
val current_cycle : t -> int

(** A deep, closure-free copy of all mutable engine state — safe to
    [Marshal] and to restore any number of times.  Snapshots only make
    sense against an engine built from the same streams/FSMDs/config
    shape (tracing engines are not supported). *)
type snapshot

val snapshot : t -> snapshot

(** Overwrite the engine's state with the snapshot's.  The snapshot is
    never aliased: one snapshot can seed many runs.
    @raise Sim_failure on a shape mismatch (wrong design). *)
val restore : t -> snapshot -> unit

(** [arm t params] patches named registers in place, using the same
    [(process, (origin_name, value) list)] binding shape as
    [cfg.params].  Pipelined iterations in flight have their frozen
    register copies patched too — intended for fault-pad registers,
    which the program itself never writes. *)
val arm : t -> (string * (string * int64) list) list -> unit

(** [simulate] = {!create} + {!run}. *)
val simulate :
  ?cfg:config ->
  streams:Front.Ast.stream_decl list ->
  fsmds:Hls.Fsmd.t list ->
  ?checkers:checker list ->
  unit ->
  result
