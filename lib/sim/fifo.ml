(** Cycle-accurate stream FIFO.

    Writes performed during a cycle become visible to readers one cycle
    later (the FIFO is registered, as an M4K-based scfifo is): [push]
    stages the value and [commit] — called once at the end of every
    simulation cycle — moves staged values into the visible queue.
    Occupancy statistics feed the paper-style overhead reports. *)

type t = {
  name : string;
  depth : int;
  q : int64 Queue.t;
  staged : int64 Queue.t;
  mutable pushes : int;
  mutable pops : int;
  mutable max_occupancy : int;
}

let create ~name ~depth =
  {
    name;
    depth;
    q = Queue.create ();
    staged = Queue.create ();
    pushes = 0;
    pops = 0;
    max_occupancy = 0;
  }

let occupancy f = Queue.length f.q + Queue.length f.staged

let can_push f = occupancy f < f.depth

let can_pop f = not (Queue.is_empty f.q)

let push f v =
  if not (can_push f) then invalid_arg (Printf.sprintf "Fifo.push: %s full" f.name);
  Queue.add v f.staged;
  f.pushes <- f.pushes + 1

let pop f =
  if Queue.is_empty f.q then invalid_arg (Printf.sprintf "Fifo.pop: %s empty" f.name);
  f.pops <- f.pops + 1;
  Queue.pop f.q

let peek f = Queue.peek_opt f.q

(** End-of-cycle: staged values become visible. *)
let commit f =
  Queue.transfer f.staged f.q;
  let occ = Queue.length f.q in
  if occ > f.max_occupancy then f.max_occupancy <- occ

(** Values still enqueued (visible ones first). *)
let contents f = List.of_seq (Queue.to_seq f.q) @ List.of_seq (Queue.to_seq f.staged)

(** Deep copy (for engine snapshots). *)
let copy f = { f with q = Queue.copy f.q; staged = Queue.copy f.staged }

(** Overwrite [f]'s state with [saved]'s; [saved] is left untouched. *)
let restore f ~saved =
  Queue.clear f.q;
  Queue.iter (fun v -> Queue.add v f.q) saved.q;
  Queue.clear f.staged;
  Queue.iter (fun v -> Queue.add v f.staged) saved.staged;
  f.pushes <- saved.pushes;
  f.pops <- saved.pops;
  f.max_occupancy <- saved.max_occupancy
