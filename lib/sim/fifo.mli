(** Cycle-accurate stream FIFO.

    Writes performed during a cycle become visible to readers one cycle
    later (the FIFO is registered, as an M4K-based scfifo is): {!push}
    stages the value and {!commit} — called once at the end of every
    simulation cycle — moves staged values into the visible queue.
    Occupancy statistics feed the paper-style overhead reports. *)

type t = {
  name : string;
  depth : int;                   (** capacity in elements *)
  q : int64 Queue.t;             (** committed (visible) values *)
  staged : int64 Queue.t;        (** values pushed this cycle *)
  mutable pushes : int;
  mutable pops : int;
  mutable max_occupancy : int;
}

val create : name:string -> depth:int -> t

(** Committed plus staged element count. *)
val occupancy : t -> int

(** True when a push would not overflow [depth] (staged included). *)
val can_push : t -> bool

(** True when a committed value is available to pop. *)
val can_pop : t -> bool

(** Stage a value for the end of this cycle.
    @raise Invalid_argument when full. *)
val push : t -> int64 -> unit

(** Pop the oldest committed value.
    @raise Invalid_argument when empty. *)
val pop : t -> int64

val peek : t -> int64 option

(** End of cycle: staged values become visible; occupancy statistics
    update. *)
val commit : t -> unit

(** Values still enqueued, oldest first (committed before staged). *)
val contents : t -> int64 list

(** Deep copy (engine snapshots). *)
val copy : t -> t

(** Overwrite a live FIFO's state from a saved copy; the copy is left
    untouched, so one snapshot can seed many restores. *)
val restore : t -> saved:t -> unit
