(** Regression-corpus storage — see {!Corpus} interface. *)

type entry = {
  name : string;
  classes : string list;
  seed : int64 option;
  fuel : int option;
  source : string;
}

let default_dir = "examples/torture"

let header e =
  let b = Buffer.create 128 in
  Buffer.add_string b ("// torture reproducer: " ^ e.name ^ "\n");
  Buffer.add_string b ("// classes: " ^ String.concat " " e.classes ^ "\n");
  (match (e.seed, e.fuel) with
  | Some s, Some f ->
      Buffer.add_string b (Printf.sprintf "// seed: %Ld fuel: %d\n" s f)
  | Some s, None -> Buffer.add_string b (Printf.sprintf "// seed: %Ld\n" s)
  | None, _ -> ());
  Buffer.contents b

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.name ^ ".inca") in
  let oc = open_out path in
  output_string oc (header e);
  output_string oc "\n";
  output_string oc e.source;
  close_out oc;
  path

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let strip_prefix p s =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let name = ref None and classes = ref [] and seed = ref None and fuel = ref None in
  let body = ref [] in
  List.iter
    (fun line ->
      match strip_prefix "// torture reproducer: " line with
      | Some n -> name := Some (String.trim n)
      | None -> (
          match strip_prefix "// classes: " line with
          | Some cs ->
              classes :=
                List.filter (fun s -> s <> "") (String.split_on_char ' ' cs)
          | None -> (
              match strip_prefix "// seed: " line with
              | Some rest ->
                  (try
                     Scanf.sscanf rest "%Ld fuel: %d" (fun s f ->
                         seed := Some s;
                         fuel := Some f)
                   with _ -> (
                     try Scanf.sscanf rest "%Ld" (fun s -> seed := Some s)
                     with _ -> ()))
              | None -> body := line :: !body)))
    lines;
  let name =
    match !name with
    | Some n -> n
    | None -> failwith (path ^ ": not a torture corpus file (missing header)")
  in
  (* drop the blank separator line the writer emits before the program *)
  let body = List.rev !body in
  let body = match body with "" :: rest -> rest | _ -> body in
  { name; classes = !classes; seed = !seed; fuel = !fuel;
    source = String.concat "\n" body }

let files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".inca")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let replay ?max_cycles ?watchdog path =
  match Front.Typecheck.parse_and_check ~file:path (load path).source with
  | exception e ->
      Error (Printf.sprintf "%s: does not parse: %s" path (Printexc.to_string e))
  | prog -> (
      let o = Oracle.check ?max_cycles ?watchdog prog in
      match o.Oracle.divergences with
      | [] -> Ok ()
      | ds ->
          Error
            (Printf.sprintf "%s: diverges again (%s)" path
               (String.concat ", " (List.map Oracle.class_key ds))))
