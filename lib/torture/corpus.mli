(** The checked-in regression corpus of shrunk reproducers.

    Every divergence the fuzzer finds is auto-shrunk and written here as
    a plain [.inca] program whose header comments record where it came
    from (class keys, seed, fuel, shrink ratio).  The lexer skips
    comments, so a corpus file is parsed and replayed exactly like any
    other example.

    Replay semantics: a committed corpus entry documents a divergence
    that has since been {e fixed} — replay runs the full differential
    oracle and demands agreement, so a regression resurfacing the old
    divergence fails the suite with its original class key.  A file
    freshly written by a failing [inca fuzz] run still diverges, of
    course; it becomes a committed entry once the underlying bug is
    repaired. *)

type entry = {
  name : string;  (** file stem, e.g. ["stream-read-narrowing"] *)
  classes : string list;  (** oracle class keys recorded at discovery *)
  seed : int64 option;  (** generator seed, when machine-found *)
  fuel : int option;
  source : string;  (** the program text, header comments excluded *)
}

val default_dir : string
(** ["examples/torture"], relative to the repo root. *)

(** [save ~dir e] writes [dir/<name>.inca] (creating [dir] if needed)
    and returns the path.  Deterministic: same entry, same bytes. *)
val save : dir:string -> entry -> string

(** Parse a corpus file back into an entry.
    @raise Failure on a file without a torture header. *)
val load : string -> entry

(** Sorted [.inca] paths under a corpus directory ([] if absent). *)
val files : string -> string list

(** Replay one corpus file through the oracle: [Ok ()] when every
    execution agrees, [Error msg] naming the class keys otherwise. *)
val replay : ?max_cycles:int -> ?watchdog:int -> string -> (unit, string) result
