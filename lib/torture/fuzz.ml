(** Fuzzing campaign runner — see {!Fuzz} interface. *)

type finding = {
  f_index : int;
  f_seed : int64;
  f_classes : string list;
  f_details : (string * string) list;
  f_shrunk : Front.Ast.program;
  f_stats : Shrink.stats;
  f_corpus : string option;
}

type report = {
  r_seed : int64;
  r_count : int;
  r_fuel : int;
  r_max_cycles : int;
  r_watchdog : int;
  r_findings : finding list;
  r_classes : (string * int) list;
  r_baseline_cycles : int;
}

let default_count = 200
let default_fuel = 8

let empty_program = { Front.Ast.streams = []; externs = []; procs = [] }

let class_set divergences =
  List.sort_uniq compare (List.map Oracle.class_key divergences)

(* One checked program, as computed inside a worker domain.  Carries the
   as-checked source (not the AST) across the domain boundary; the
   shrinker re-parses it on the main domain. *)
type checked =
  | Agree of int  (** finished-baseline cycle count (0 when unavailable) *)
  | Diverged of {
      d_classes : string list;
      d_details : (string * string) list;
      d_source : string;
    }

let check_one ~run_seed ~fuel ~max_cycles ~watchdog ~faults ~from_reset ~bmc_depth
    index =
  let seed = Gen.program_seed ~run_seed ~index in
  let prog = Gen.generate ~seed ~fuel in
  let o = Oracle.check ~faults ~from_reset ~max_cycles ~watchdog ?bmc_depth prog in
  match o.Oracle.divergences with
  | [] -> Agree (Option.value ~default:0 o.Oracle.baseline_cycles)
  | ds ->
      Diverged
        {
          d_classes = class_set ds;
          d_details =
            List.map (fun d -> (Oracle.class_key d, d.Oracle.detail)) ds;
          d_source = o.Oracle.source;
        }

(* Corpus file stem for a machine-found reproducer: the program seed,
   sign folded into an [m] so the name is filesystem-friendly. *)
let corpus_name seed =
  let s = Printf.sprintf "%Ld" seed in
  if String.length s > 0 && s.[0] = '-' then
    "auto-m" ^ String.sub s 1 (String.length s - 1)
  else "auto-" ^ s

let run ?jobs ?(seed = 42L) ?(count = default_count) ?(fuel = default_fuel)
    ?(max_cycles = Oracle.default_max_cycles)
    ?(watchdog = Oracle.default_watchdog) ?(faults = []) ?(from_reset = false)
    ?bmc_depth ?shrink_attempts ?corpus_dir () =
  let indices = List.init count (fun i -> i) in
  let outcomes =
    Exec.Pool.map ?jobs
      (check_one ~run_seed:seed ~fuel ~max_cycles ~watchdog ~faults ~from_reset
         ~bmc_depth)
      indices
  in
  let saved_signatures = ref [] in
  let findings =
    List.concat
      (List.mapi
         (fun index (o : checked Exec.Pool.outcome) ->
           let diverged =
             match o.Exec.Pool.value with
             | Ok (Agree _) -> None
             | Ok (Diverged d) -> Some (d.d_classes, d.d_details, d.d_source)
             | Error msg ->
                 (* the job itself crashed past the pool's retry — a
                    harness bug, reported as its own class *)
                 Some ([ "harness-crash" ], [ ("harness-crash", msg) ], "")
           in
           match diverged with
           | None -> []
           | Some (classes, details, source) ->
               let prog =
                 match Front.Typecheck.parse_and_check source with
                 | p -> p
                 | exception _ -> empty_program
               in
               let shrunk, stats =
                 if prog == empty_program then
                   ( prog,
                     { Shrink.attempts = 0; accepted = 0; orig_lines = 0;
                       min_lines = 0 } )
                 else
                   let keep cand =
                     let o =
                       Oracle.check ~faults ~from_reset ~max_cycles ~watchdog
                         ?bmc_depth cand
                     in
                     class_set o.Oracle.divergences = classes
                   in
                   Shrink.shrink ?max_attempts:shrink_attempts ~keep prog
               in
               let f_seed = Gen.program_seed ~run_seed:seed ~index in
               let f_corpus =
                 match corpus_dir with
                 | Some dir
                   when prog != empty_program
                        && not (List.mem classes !saved_signatures) ->
                     saved_signatures := classes :: !saved_signatures;
                     let entry =
                       {
                         Corpus.name = corpus_name f_seed;
                         classes;
                         seed = Some f_seed;
                         fuel = Some fuel;
                         source = Front.Pretty.program_to_string shrunk;
                       }
                     in
                     Some (Corpus.save ~dir entry)
                 | _ -> None
               in
               [
                 {
                   f_index = index;
                   f_seed;
                   f_classes = classes;
                   f_details = details;
                   f_shrunk = shrunk;
                   f_stats = stats;
                   f_corpus;
                 };
               ])
         outcomes)
  in
  let baseline_cycles =
    List.fold_left
      (fun acc (o : checked Exec.Pool.outcome) ->
        match o.Exec.Pool.value with Ok (Agree c) -> acc + c | _ -> acc)
      0 outcomes
  in
  let classes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun f ->
        List.iter
          (fun k ->
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          f.f_classes)
      findings;
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare
  in
  {
    r_seed = seed;
    r_count = count;
    r_fuel = fuel;
    r_max_cycles = max_cycles;
    r_watchdog = watchdog;
    r_findings = findings;
    r_classes = classes;
    r_baseline_cycles = baseline_cycles;
  }

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "torture: %d programs (seed %Ld, fuel %d), %d divergent\n" r.r_count r.r_seed
    r.r_fuel (List.length r.r_findings);
  List.iter (fun (k, n) -> Printf.bprintf b "  %-28s %d\n" k n) r.r_classes;
  List.iter
    (fun f ->
      Printf.bprintf b "  #%d seed=%Ld [%s] shrunk %d -> %d lines%s\n" f.f_index
        f.f_seed
        (String.concat "," f.f_classes)
        f.f_stats.Shrink.orig_lines f.f_stats.Shrink.min_lines
        (match f.f_corpus with
        | Some p -> "  -> " ^ Filename.basename p
        | None -> "");
      List.iter
        (fun (k, d) -> Printf.bprintf b "      %s: %s\n" k d)
        f.f_details)
    r.r_findings;
  if r.r_findings = [] then
    Printf.bprintf b "  all executions agree (%d baseline cycles simulated)\n"
      r.r_baseline_cycles;
  Buffer.contents b

let json_of r : Json.t =
  let finding f =
    Json.Obj
      [
        ("index", Json.int f.f_index);
        ("seed", Json.i64 f.f_seed);
        ("classes", Json.list Json.str f.f_classes);
        ( "details",
          Json.list
            (fun (k, d) -> Json.Obj [ ("class", Json.Str k); ("detail", Json.Str d) ])
            f.f_details );
        ("orig_lines", Json.int f.f_stats.Shrink.orig_lines);
        ("min_lines", Json.int f.f_stats.Shrink.min_lines);
        ("shrink_attempts", Json.int f.f_stats.Shrink.attempts);
        ("corpus", Json.opt (fun p -> Json.Str (Filename.basename p)) f.f_corpus);
        ("source", Json.Str (Front.Pretty.program_to_string f.f_shrunk));
      ]
  in
  Json.Obj
    [
      ("seed", Json.i64 r.r_seed);
      ("count", Json.int r.r_count);
      ("fuel", Json.int r.r_fuel);
      ("max_cycles", Json.int r.r_max_cycles);
      ("watchdog", Json.int r.r_watchdog);
      ("divergent", Json.int (List.length r.r_findings));
      ("baseline_cycles", Json.int r.r_baseline_cycles);
      ("classes", Json.Obj (List.map (fun (k, n) -> (k, Json.int n)) r.r_classes));
      ("findings", Json.list finding r.r_findings);
    ]

let workloads r =
  List.map
    (fun f ->
      {
        Campaign.wname = Printf.sprintf "torture-%d" f.f_index;
        program = f.f_shrunk;
        options = Mine.Trace.auto_options f.f_shrunk;
      })
    r.r_findings
