(** The fuzzing campaign: generate → differential check → shrink.

    A run is fully determined by [(seed, count, fuel, max_cycles,
    watchdog, faults)]: program [i] is generated from
    {!Gen.program_seed}[ ~run_seed ~index:i], checked by the oracle, and
    every divergent program is delta-debugged to a minimal reproducer.
    The report — including its JSON rendering — contains no wall-clock
    data, so it is byte-identical across runs and across [--jobs]
    values (oracle checks are scheduled on {!Exec.Pool}, which returns
    outcomes in job order; shrinking runs serially in index order). *)

type finding = {
  f_index : int;  (** program index within the run *)
  f_seed : int64;  (** the program's own generator seed *)
  f_classes : string list;  (** sorted, deduplicated oracle class keys *)
  f_details : (string * string) list;  (** (class key, detail), oracle order *)
  f_shrunk : Front.Ast.program;  (** the minimal reproducer *)
  f_stats : Shrink.stats;
  f_corpus : string option;  (** reproducer path, when a corpus dir was given *)
}

type report = {
  r_seed : int64;
  r_count : int;
  r_fuel : int;
  r_max_cycles : int;
  r_watchdog : int;
  r_findings : finding list;  (** ascending index *)
  r_classes : (string * int) list;  (** divergence count per class key, sorted *)
  r_baseline_cycles : int;
      (** summed finished-baseline circuit cycles — a determinism-safe
          work measure the bench harness divides by wall time *)
}

val default_count : int  (** 200 *)

val default_fuel : int  (** 8 *)

(** Run the campaign.  [faults] are injected into every circuit compile
    — the torture tests use a known translation fault to produce a
    deterministic divergence.  [from_reset] forwards to {!Oracle.check}:
    evaluate fault legs from cycle zero instead of the fork-point path
    (the bench harness A/Bs the two).  [bmc_depth] arms the oracle's
    Absint-vs-BMC cross-check (see {!Oracle.check}); it participates in
    the shrinker's keep predicate, so a [proved-fired:bmc] reproducer
    stays a BMC disagreement all the way down.  [corpus_dir] writes each
    finding's shrunk reproducer as a corpus file (first finding per
    class signature; later duplicates are reported but not written).
    [shrink_attempts] bounds the shrinker's candidate budget per
    finding. *)
val run :
  ?jobs:int ->
  ?seed:int64 ->
  ?count:int ->
  ?fuel:int ->
  ?max_cycles:int ->
  ?watchdog:int ->
  ?faults:Faults.Fault.t list ->
  ?from_reset:bool ->
  ?bmc_depth:int ->
  ?shrink_attempts:int ->
  ?corpus_dir:string ->
  unit ->
  report

(** Human-readable summary. *)
val render : report -> string

(** Deterministic JSON payload (no timings, no absolute paths) — the
    [inca fuzz] entry in a {!Core.Report} envelope. *)
val json_of : report -> Json.t

(** Each finding's shrunk reproducer as a fault-injection campaign
    workload (testbench derived with {!Mine.Trace.auto_options}), so a
    divergence class the fuzzer discovers feeds the coverage sweep and
    the mining ranker for free. *)
val workloads : report -> Campaign.workload list
