(** Seeded random InCA-C program generator.  See {!Gen} interface for
    the shape contract; everything here is a pure function of the seed
    threaded through {!Rng}.  Evaluation order matters wherever the rng
    is consumed, so lists are built with the explicitly-ordered
    {!tabulate} instead of [List.init]. *)

open Front.Ast

let max_iters = 12

(* Left-to-right [List.init]: the closure consumes the rng, so the call
   order must be the list order, which [List.init] does not guarantee. *)
let tabulate n f =
  let rec go i = if i >= n then [] else let x = f i in x :: go (i + 1) in
  go 0

(* --- generation environment -------------------------------------------- *)

type scope = {
  rng : Rng.t;
  mutable scalars : (string * ty) list;  (** in-scope scalar variables *)
  mutable arrays : (string * ty * int) list;  (** name, element type, size *)
  mutable fuel : int;  (** statement budget left for this process *)
  mutable fresh : int;  (** fresh-name counter *)
  iters : int;  (** main-loop trip count of the pipeline *)
}

let fresh sc prefix =
  let n = sc.fresh in
  sc.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let spend sc = sc.fuel <- sc.fuel - 1

(* Run [f] in a child lexical scope: declarations made inside do not
   leak into statements generated after it. *)
let scoped sc f =
  let scalars = sc.scalars and arrays = sc.arrays in
  let r = f () in
  sc.scalars <- scalars;
  sc.arrays <- arrays;
  r

let scalar_types =
  [
    Tint (Signed, W8); Tint (Unsigned, W8);
    Tint (Signed, W16); Tint (Unsigned, W16);
    Tint (Signed, W32); Tint (Unsigned, W32);
    Tint (Signed, W64); Tint (Unsigned, W64);
  ]

let pick_type sc = Rng.choose sc.rng scalar_types

(* Untyped expression nodes: elaboration recomputes every type and
   inserts the casts, so the generator only has to respect scoping and
   the scalar/array discipline. *)
let mk e = mk_expr Tvoid e

let mk_int64 n = mk (Int n)

(* Literals biased toward width edges — exactly where narrowed
   datapaths, sign extension and canonicalization bugs live (the
   paper's Figure 3 literal is 2^32). *)
let edge_literals =
  [ 0L; 1L; 2L; 7L; 8L; 15L; 127L; 128L; 255L; 256L; 32767L; 65535L;
    2147483647L; -1L; -2L; -128L; -32768L; 4294967295L; 4294967296L ]

let literal sc =
  if Rng.chance sc.rng ~pct:40 then mk_int64 (Rng.choose sc.rng edge_literals)
  else mk_int64 (Int64.of_int (Rng.int sc.rng 33 - 8))

(* --- expressions -------------------------------------------------------- *)

let arith_ops = [ Add; Sub; Mul; Band; Bor; Bxor ]
let cmp_ops = [ Lt; Le; Gt; Ge; Eq; Ne ]

(* A random integer-valued expression of bounded [depth] over the
   in-scope scalars.  Division and modulo get odd-ized divisors
   ([e | 1]) so no evaluation ever traps; shift amounts are constants in
   [0, 7] so they are in range at every operand width. *)
let rec int_expr sc depth =
  let leaf () =
    match sc.scalars with
    | [] -> literal sc
    | vars ->
        if Rng.chance sc.rng ~pct:65 then
          let name, _ = Rng.choose sc.rng vars in
          mk (Var name)
        else literal sc
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int sc.rng 10 with
    | 0 | 1 | 2 ->
        let op = Rng.choose sc.rng arith_ops in
        let a = int_expr sc (depth - 1) in
        let b = int_expr sc (depth - 1) in
        mk (Binop (op, a, b))
    | 3 ->
        (* division that cannot trap: divisor forced odd, hence nonzero *)
        let op = if Rng.bool sc.rng then Div else Mod in
        let a = int_expr sc (depth - 1) in
        let divisor = mk (Binop (Bor, int_expr sc (depth - 1), mk_int64 1L)) in
        mk (Binop (op, a, divisor))
    | 4 ->
        let op = if Rng.bool sc.rng then Shl else Shr in
        let a = int_expr sc (depth - 1) in
        mk (Binop (op, a, mk_int64 (Int64.of_int (Rng.int sc.rng 8))))
    | 5 ->
        let op = if Rng.bool sc.rng then Neg else Bnot in
        mk (Unop (op, int_expr sc (depth - 1)))
    | 6 ->
        let ty = pick_type sc in
        mk (Cast (ty, int_expr sc (depth - 1)))
    | 7 -> (
        match sc.arrays with
        | [] -> leaf ()
        | arrays ->
            let name, _, size = Rng.choose sc.rng arrays in
            (* size is a power of two: masking keeps every index legal *)
            let idx =
              mk (Binop (Band, int_expr sc (depth - 1), mk_int64 (Int64.of_int (size - 1))))
            in
            mk (Index (name, idx)))
    | _ -> leaf ()

let cmp sc depth =
  let a = int_expr sc depth in
  let b = int_expr sc depth in
  mk (Binop (Rng.choose sc.rng cmp_ops, a, b))

let bool_expr sc depth =
  if depth > 0 && Rng.chance sc.rng ~pct:25 then
    let op = if Rng.bool sc.rng then Land else Lor in
    let a = cmp sc (depth - 1) in
    let b = cmp sc (depth - 1) in
    mk (Binop (op, a, b))
  else cmp sc depth

(* --- statements --------------------------------------------------------- *)

let masked_index sc size =
  let e = int_expr sc 1 in
  mk (Binop (Band, e, mk_int64 (Int64.of_int (size - 1))))

(* Loop counters (names i0, k.., w..) are never reassigned: stores to
   them would change trip counts and break the stream balance the
   testbench derivation relies on. *)
let writable_scalars sc =
  List.filter (fun (n, _) -> String.length n > 0 && n.[0] = 'v') sc.scalars

(* ROMs (named rom..) are const: only plain arrays (a..) are stored to. *)
let writable_arrays sc =
  List.filter (fun (n, _, _) -> String.length n > 0 && n.[0] = 'a') sc.arrays

let assign_stmt sc =
  let writable = writable_scalars sc in
  let arrays = writable_arrays sc in
  let use_array = arrays <> [] && (writable = [] || Rng.chance sc.rng ~pct:30) in
  if use_array then begin
    let name, _, size = Rng.choose sc.rng arrays in
    let idx = masked_index sc size in
    let rhs = int_expr sc 2 in
    Some (mk_stmt (Assign (Lindex (name, idx), rhs)))
  end
  else
    match writable with
    | [] -> None
    | _ ->
        let name, _ = Rng.choose sc.rng writable in
        let rhs = int_expr sc 2 in
        Some (mk_stmt (Assign (Lvar name, rhs)))

(* An assertion: mostly true-by-construction shapes (masked ranges,
   induction bounds), sometimes an arbitrary comparison whose truth the
   oracle arbitrates between software and hardware. *)
let assertion sc =
  let cond =
    match Rng.int sc.rng 4 with
    | 0 ->
        (* (e & m) <= m : true at every width and signedness *)
        let m = Int64.of_int (Rng.choose sc.rng [ 7; 15; 63; 255 ]) in
        let e = int_expr sc 1 in
        mk (Binop (Le, mk (Binop (Band, e, mk_int64 m)), mk_int64 m))
    | 1 when List.mem_assoc "i0" sc.scalars ->
        (* induction variable stays under its bound *)
        mk (Binop (Lt, mk (Var "i0"), mk_int64 (Int64.of_int sc.iters)))
    | 2 -> bool_expr sc 1
    | _ ->
        (* (e & m) >= 0 : masked value is a small non-negative *)
        let m = Int64.of_int (Rng.choose sc.rng [ 3; 7; 31 ]) in
        let e = int_expr sc 1 in
        mk (Binop (Ge, mk (Binop (Band, e, mk_int64 m)), mk_int64 0L))
  in
  mk_stmt (Assert (cond, ""))

let decl sc =
  let ty = pick_type sc in
  let name = fresh sc "v" in
  let init = if Rng.chance sc.rng ~pct:80 then Some (int_expr sc 2) else None in
  sc.scalars <- (name, ty) :: sc.scalars;
  mk_stmt (Decl (ty, name, init))

let array_decl sc =
  let size = Rng.choose sc.rng [ 4; 8; 16 ] in
  let elt = Rng.choose sc.rng [ Tint (Signed, W32); Tint (Unsigned, W16); Tint (Signed, W16) ] in
  let name = fresh sc "a" in
  sc.arrays <- (name, elt, size) :: sc.arrays;
  mk_stmt (Decl (Tarray (elt, size), name, None))

let rom_decl sc =
  let size = Rng.choose sc.rng [ 4; 8 ] in
  let elt = Rng.choose sc.rng [ Tint (Signed, W32); Tint (Signed, W16) ] in
  let name = fresh sc "rom" in
  let values = tabulate size (fun _ -> Int64.of_int (Rng.int sc.rng 512 - 128)) in
  sc.arrays <- (name, elt, size) :: sc.arrays;
  mk_stmt (Const_array (elt, name, values))

(* Statements with no stream traffic (for loop bodies and branches).
   [depth] bounds control-structure nesting. *)
let rec compute_stmt sc depth =
  let simple () =
    match assign_stmt sc with Some st -> st | None -> decl sc
  in
  match
    Rng.weighted sc.rng
      [ (45, `Assign); (14, `Decl); (12, `Assert); (10, `If); (6, `For);
        (4, `While); (4, `Array); (3, `Rom) ]
  with
  | `Assign -> simple ()
  | `Decl -> decl sc
  | `Assert -> assertion sc
  | `Array -> array_decl sc
  | `Rom -> rom_decl sc
  | `If when depth > 0 ->
      let cond = bool_expr sc 2 in
      let then_ = scoped sc (fun () -> compute_block sc (depth - 1) (1 + Rng.int sc.rng 2)) in
      let else_ =
        if Rng.bool sc.rng then
          scoped sc (fun () -> compute_block sc (depth - 1) (1 + Rng.int sc.rng 2))
        else []
      in
      mk_stmt (If (cond, then_, else_))
  | `For when depth > 0 ->
      let ivar = fresh sc "k" in
      let trips = 2 + Rng.int sc.rng 3 in
      let body =
        scoped sc (fun () ->
            sc.scalars <- (ivar, Tint (Signed, W32)) :: sc.scalars;
            compute_block sc (depth - 1) (1 + Rng.int sc.rng 2))
      in
      let header =
        {
          init = Some (mk_stmt (Decl (Tint (Signed, W32), ivar, Some (mk_int64 0L))));
          cond = mk (Binop (Lt, mk (Var ivar), mk_int64 (Int64.of_int trips)));
          step =
            Some (mk_stmt (Assign (Lvar ivar, mk (Binop (Add, mk (Var ivar), mk_int64 1L)))));
          pipelined = false;
        }
      in
      mk_stmt (For (header, body))
  | `While when depth > 0 ->
      (* bounded countdown: structurally terminating *)
      let cvar = fresh sc "w" in
      let start = 2 + Rng.int sc.rng 4 in
      let body =
        scoped sc (fun () ->
            sc.scalars <- (cvar, Tint (Signed, W32)) :: sc.scalars;
            compute_block sc (depth - 1) (Rng.int sc.rng 2)
            @ [ mk_stmt (Assign (Lvar cvar, mk (Binop (Sub, mk (Var cvar), mk_int64 1L)))) ])
      in
      mk_stmt
        (Block
           [
             mk_stmt (Decl (Tint (Signed, W32), cvar, Some (mk_int64 (Int64.of_int start))));
             mk_stmt (While (mk (Binop (Gt, mk (Var cvar), mk_int64 0L)), body));
           ])
  | `If | `For | `While -> simple ()

and compute_block sc depth n =
  let rec go i =
    if i >= n || sc.fuel <= 0 then []
    else begin
      spend sc;
      let st = compute_stmt sc depth in
      st :: go (i + 1)
    end
  in
  match go 0 with [] -> [ assertion sc ] | stmts -> stmts

(* --- processes ---------------------------------------------------------- *)

(* One pipeline stage: declarations, then a main loop that reads one
   value from [input], computes, and writes one value to [output] per
   iteration, then an optional epilogue assertion.  [aux] (if given)
   receives conditional extra traffic — it is drained by the testbench,
   so its write count need not balance anything. *)
let gen_proc sc ~name ~input ~output ~aux =
  let prologue =
    tabulate
      (1 + Rng.int sc.rng 2)
      (fun _ ->
        match Rng.weighted sc.rng [ (6, `Decl); (2, `Array); (1, `Rom) ] with
        | `Decl -> decl sc
        | `Array -> array_decl sc
        | `Rom -> rom_decl sc)
  in
  let xvar = fresh sc "v" in
  let xty = pick_type sc in
  let decl_x = mk_stmt (Decl (xty, xvar, None)) in
  sc.scalars <- (xvar, xty) :: sc.scalars;
  let ivar = "i0" in
  let loop_body, pipelined =
    scoped sc (fun () ->
        sc.scalars <- (ivar, Tint (Signed, W32)) :: sc.scalars;
        let read = mk_stmt (Stream_read (Lvar xvar, input)) in
        let body_depth = if sc.fuel > 6 then 2 else 1 in
        let compute = compute_block sc body_depth (1 + Rng.int sc.rng 3) in
        let aux_traffic =
          match aux with
          | Some s when Rng.chance sc.rng ~pct:60 ->
              let w = mk_stmt (Stream_write (s, int_expr sc 2)) in
              if Rng.bool sc.rng then
                let c = bool_expr sc 1 in
                [ mk_stmt (If (c, [ w ], [])) ]
              else [ w ]
          | _ -> []
        in
        let write = mk_stmt (Stream_write (output, int_expr sc 2)) in
        let body = (read :: compute) @ aux_traffic @ [ write ] in
        (* pipeline only straight-line bodies: control flow inside a
           modulo-scheduled loop is outside the subset the scheduler
           handles profitably *)
        let straight_line =
          List.for_all
            (fun st ->
              match st.s with If _ | For _ | While _ | Block _ -> false | _ -> true)
            body
        in
        let pipelined =
          straight_line && List.length body <= 6 && Rng.chance sc.rng ~pct:50
        in
        (body, pipelined))
  in
  let header =
    {
      init = Some (mk_stmt (Decl (Tint (Signed, W32), ivar, Some (mk_int64 0L))));
      cond = mk (Binop (Lt, mk (Var ivar), mk_int64 (Int64.of_int sc.iters)));
      step = Some (mk_stmt (Assign (Lvar ivar, mk (Binop (Add, mk (Var ivar), mk_int64 1L)))));
      pipelined;
    }
  in
  let main_loop = mk_stmt (For (header, loop_body)) in
  let epilogue = if Rng.chance sc.rng ~pct:40 then [ assertion sc ] else [] in
  {
    pname = name;
    kind = Hardware;
    params = [];
    body = prologue @ [ decl_x; main_loop ] @ epilogue;
    ploc = Front.Loc.none;
  }

(* --- whole programs ----------------------------------------------------- *)

let stream_elem_types =
  [ Tint (Signed, W16); Tint (Unsigned, W16); Tint (Signed, W32); Tint (Unsigned, W32);
    Tint (Signed, W64); Tint (Unsigned, W8) ]

let generate ~seed ~fuel =
  let rng = Rng.make seed in
  let nprocs = 1 + Rng.int rng 3 in
  let iters = 4 + Rng.int rng (max_iters - 3) in
  let streams =
    tabulate (nprocs + 1) (fun i ->
        {
          sname = Printf.sprintf "chan%d" i;
          elem = Rng.choose rng stream_elem_types;
          depth = 2 + Rng.int rng 15;
        })
  in
  let aux =
    if Rng.chance rng ~pct:35 then
      Some { sname = "aux0"; elem = Tint (Signed, W32); depth = 2 + Rng.int rng 7 }
    else None
  in
  let aux_owner = match aux with Some _ -> Rng.int rng nprocs | None -> -1 in
  let procs =
    tabulate nprocs (fun i ->
        let sc =
          {
            rng = Rng.split rng;
            scalars = [];
            arrays = [];
            fuel = Stdlib.max 2 fuel;
            fresh = 0;
            iters;
          }
        in
        gen_proc sc
          ~name:(Printf.sprintf "p%d" i)
          ~input:(Printf.sprintf "chan%d" i)
          ~output:(Printf.sprintf "chan%d" (i + 1))
          ~aux:(if i = aux_owner then Option.map (fun s -> s.sname) aux else None))
  in
  let prog =
    {
      streams = (streams @ match aux with Some s -> [ s ] | None -> []);
      externs = [];
      procs;
    }
  in
  Front.Typecheck.elaborate prog

(* Per-program seed: mix the run seed with the index through the
   splitmix64 chain so adjacent indices get decorrelated streams. *)
let program_seed ~run_seed ~index =
  let r = Rng.make (Int64.add run_seed (Int64.mul 0x100000001B3L (Int64.of_int index))) in
  Rng.next r
