(** Seeded random InCA-C program generator (Csmith-style, but
    always-well-typed by construction).

    Emits a pipeline of 1-3 hardware processes connected by streams:
    the first reads the testbench feed stream, each stage transforms
    values with random scalar arithmetic, arrays/ROMs, nested and
    optionally pipelined loops, and hardware assertions, and the last
    writes the drained output stream.  Stream reads and writes are
    balanced across the chain (every stage moves exactly [iters] values)
    so generated programs cannot deadlock on stream topology alone —
    any hang the oracle sees is the toolchain's doing, or a shrink
    artifact the watchdog classifies.

    Programs use no process parameters and no extern functions, so
    {!Mine.Trace.auto_options} derives a complete testbench from the
    program text alone: that keeps shrunk reproducers self-contained.

    Generation is a pure function of [seed]: identical seeds yield
    byte-identical programs on every platform and domain count. *)

(** [generate ~seed ~fuel] returns an elaborated (type-checked)
    program.  [fuel] scales the statement/expression budget: 4 is
    trivial straight-line code, 8 (the [inca fuzz] default) mixes
    loops, arrays and assertions, 16+ produces dense nests. *)
val generate : seed:int64 -> fuel:int -> Front.Ast.program

(** The derived seed of program [index] within a run seeded [run_seed]
    — exposed so a divergence report can name the exact seed that
    regenerates its program. *)
val program_seed : run_seed:int64 -> index:int -> int64

(** Number of values each generated pipeline stage moves; bounded so
    the auto-testbench ramp (48 values) always suffices. *)
val max_iters : int
