(** Differential co-simulation oracle — see {!Oracle} interface. *)

module Driver = Core.Driver
module Engine = Sim.Engine
module Fault = Faults.Fault

type dclass =
  | Output_mismatch
  | Spurious_fire
  | Missed_abort
  | Proved_fired
  | Liveness_unsound
  | Hang
  | Cycle_blowup
  | Crash

type divergence = { dclass : dclass; strategy : string; detail : string }

let class_name = function
  | Output_mismatch -> "output-mismatch"
  | Spurious_fire -> "spurious-fire"
  | Missed_abort -> "missed-abort"
  | Proved_fired -> "proved-fired"
  | Liveness_unsound -> "liveness-unsound"
  | Hang -> "hang"
  | Cycle_blowup -> "cycle-blowup"
  | Crash -> "crash"

let class_key d =
  if d.strategy = "" then class_name d.dclass
  else class_name d.dclass ^ ":" ^ d.strategy

type outcome = {
  source : string;
  divergences : divergence list;
  baseline_cycles : int option;
}

let agrees o = o.divergences = []

let default_strategies =
  List.filter (fun (name, _) -> name <> "carte") Driver.all_strategies

let default_max_cycles = 20_000
let default_watchdog = 500

(* Cycle-ratio bound: an instrumented strategy may legitimately run
   slower than baseline (checker latency, port contention), but past
   [ratio]x + [slack] the slowdown itself is a finding. *)
let ratio_bound = 16
let ratio_slack = 2048

let spin_procs sites = String.concat ", " (List.map fst sites)

let exn_detail stage e =
  Printf.sprintf "%s: %s" stage (Printexc.to_string e)

(* The golden software run is stuck when it deadlocks or spins out its
   step budget — either way the circuit agreeing means hanging too. *)
let sw_stuck (r : Interp.result) =
  match r.Interp.outcome with
  | Interp.Deadlocked _ | Interp.Fuel_exhausted -> true
  | Interp.Completed | Interp.Aborted _ | Interp.Runtime_error _ -> false

let differing_drains ~drains golden actual =
  List.filter
    (fun s ->
      let get l = try List.assoc s l with Not_found -> [] in
      get golden <> get actual)
    drains

(* Verdict of assertion [id], relying on the documented alignment:
   Absint verdicts are in {!Core.Assertion.extract} order, which is the
   id numbering. *)
let proved_ids (analysis : Analysis.Absint.result) =
  List.concat
    (List.mapi
       (fun i (v : Analysis.Absint.verdict) ->
         if v.vclass = Analysis.Absint.Proved then [ i ] else [])
       analysis.verdicts)

(* How one circuit leg carries its faults.  [Legacy] injects them into
   the lowered IR and simulates from reset — the original path, kept
   for fault-free legs, multi-fault lists (sequential [Fault.apply_all]
   renumbers later sites) and faults with no enumerated twin.  [Padded]
   is the campaign's fork-point path: the all-sites-padded design
   compiled once, the fault realized by arming its pad at the site's
   first activation instead of re-simulating the shared prefix under a
   separate mutant compile. *)
type leg =
  | Legacy of Driver.compiled
  | Padded of { p_compiled : Driver.compiled; p_site : Fault.site }

let compile_leg ~from_reset ~faults ~strategy prog =
  match faults with
  | [] -> Legacy (Driver.compile ~strategy prog)
  | _ when from_reset -> Legacy (Driver.compile ~strategy ~faults prog)
  | [ fault ] -> (
      let front = Driver.front ~strategy prog in
      let inst = Fault.instrument_all front.Driver.f_ir in
      match
        List.find_opt
          (fun (s : Fault.site) -> s.Fault.s_padded && s.Fault.s_fault = fault)
          inst.Fault.ip_sites
      with
      | Some site ->
          Padded
            {
              p_compiled =
                Driver.finish { front with Driver.f_ir = inst.Fault.ip_prog };
              p_site = site;
            }
      | None -> Legacy (Driver.finish ~faults front))
  | _ -> Legacy (Driver.compile ~strategy ~faults prog)

(* Simulate one leg; returns the result plus the cycle budget actually
   applied (for the Out_of_cycles detail).  A padded leg runs the
   unarmed design once, recording when the armed site first activates;
   if it never does, arming could not change anything the run executed,
   so the unarmed run *is* the faulted run.  Otherwise the shared
   prefix is replayed to the activation cycle, the pad armed there, and
   the run finished under a budget trimmed to the cycle-ratio bound —
   past [ratio_bound]x the unarmed cycles + slack the classification is
   Cycle_blowup either way, so simulating on to [max_cycles] buys
   nothing but wall-clock. *)
let simulate_leg ~options leg : Driver.sim_result * int =
  match leg with
  | Legacy c -> (Driver.simulate ~options c, options.Driver.max_cycles)
  | Padded { p_compiled = c; p_site = site } -> (
      let act = ref (-1) in
      let on_site cycle idx =
        if idx = site.Fault.s_index && !act < 0 then act := cycle
      in
      let ses = Driver.prepare ~options ~on_site c in
      let base = Driver.session_result ses (Engine.run ses.Driver.ses_engine) in
      if !act < 0 then (base, options.Driver.max_cycles)
      else
        let budget =
          match base.Driver.engine.Engine.outcome with
          | Engine.Finished ->
              min options.Driver.max_cycles
                ((ratio_bound * base.Driver.engine.Engine.cycles) + ratio_slack)
          | _ -> options.Driver.max_cycles
        in
        let options = { options with Driver.max_cycles = budget } in
        let arm ses =
          Engine.arm ses.Driver.ses_engine [ (site.Fault.s_proc, site.Fault.s_arm) ]
        in
        let ses = Driver.prepare ~options c in
        match Engine.run_until ses.Driver.ses_engine ~cycle:!act with
        | None ->
            arm ses;
            (Driver.session_result ses (Engine.run ses.Driver.ses_engine), budget)
        | Some _ ->
            (* unreachable — the unarmed run got past this cycle — but
               arming from reset is always a faithful fallback *)
            let ses = Driver.prepare ~options c in
            arm ses;
            (Driver.session_result ses (Engine.run ses.Driver.ses_engine), budget))

(* One strategy's circuit run compared against the golden software run.
   Returns the divergences it alone exhibits plus its finished cycle
   count (for the ratio check, applied by the caller).  [live] is the
   static liveness verdict of the unfaulted design: on a fault-free leg
   the circuit outcome must not contradict it — a proved deadlock-free
   design that hangs (or a certain-deadlock design that finishes) is a
   {!Liveness_unsound} finding against the analyzer itself. *)
let check_strategy ~options ~sw ~golden_drained ~proved ~live ~from_reset ~faults
    ~prog (sname, strategy) =
  let live_unsound mk =
    if faults <> [] then []
    else
      match mk live with
      | Some detail -> [ { dclass = Liveness_unsound; strategy = sname; detail } ]
      | None -> []
  in
  let unsound_on_hang what =
    live_unsound (function
      | Analysis.Live.Deadlock_free k ->
          Some
            (Printf.sprintf
               "analyzer proved deadlock-free (bound %d) but the circuit %s" k what)
      | _ -> None)
  in
  let unsound_on_finish =
    live_unsound (function
      | Analysis.Live.Deadlock w ->
          Some
            ("analyzer claimed certain deadlock ("
            ^ Analysis.Live.witness_to_string w
            ^ ") but the circuit finished")
      | _ -> None)
  in
  match compile_leg ~from_reset ~faults ~strategy prog with
  | exception e ->
      ( [ { dclass = Crash; strategy = sname;
            detail = exn_detail "compile" e } ],
        None )
  | leg -> (
      match simulate_leg ~options leg with
      | exception e ->
          ( [ { dclass = Crash; strategy = sname;
                detail = exn_detail "simulate" e } ],
            None )
      | r, budget ->
          let eng = r.Driver.engine in
          let fsmds =
            match leg with
            | Legacy c | Padded { p_compiled = c; _ } -> c.Driver.fsmds
          in
          let fired_proved =
            List.filter (fun id -> List.mem id proved) r.Driver.failed_assertions
          in
          let proved_div =
            List.map
              (fun id ->
                { dclass = Proved_fired; strategy = sname;
                  detail = Printf.sprintf "proved assertion #%d fired in circuit" id })
              fired_proved
          in
          let sw_aborted =
            match sw.Interp.outcome with Interp.Aborted _ -> true | _ -> false
          in
          let stripped = strategy.Driver.mode = Driver.Baseline in
          let divs, cycles =
            match eng.Engine.outcome with
            | Engine.Finished ->
                if sw_stuck sw then
                  ( [ { dclass = Hang; strategy = sname;
                        detail = "software run is stuck but circuit finishes" } ],
                    Some eng.Engine.cycles )
                else if sw_aborted then
                  if stripped then
                    (* assertions stripped: finishing is the only correct
                       behaviour; outputs legitimately differ from the
                       aborted software run *)
                    ([], Some eng.Engine.cycles)
                  else
                    ( [ { dclass = Missed_abort; strategy = sname;
                          detail =
                            "software aborted on an assertion; circuit finished \
                             without firing" } ],
                      Some eng.Engine.cycles )
                else
                  let diff =
                    differing_drains ~drains:options.Driver.drains golden_drained
                      eng.Engine.drained
                  in
                  ( (match diff with
                    | [] -> []
                    | streams ->
                        [ { dclass = Output_mismatch; strategy = sname;
                            detail =
                              "output differs on " ^ String.concat ", " streams } ]),
                    Some eng.Engine.cycles )
            | Engine.Aborted m ->
                if sw_aborted || (sw_stuck sw && not stripped) then
                  (* both sides flagged the program (an abort racing a
                     software hang still counts as detection) *) ([], None)
                else
                  ( [ { dclass = Spurious_fire; strategy = sname; detail = m } ],
                    None )
            | Engine.Hang blocked ->
                if sw_stuck sw then ([], None)
                else
                  ( [ { dclass = Hang; strategy = sname;
                        detail =
                          "circuit deadlock: "
                          ^ String.concat "; "
                              (Engine.describe_blocked fsmds blocked) } ],
                    None )
            | Engine.Livelock spinning ->
                if sw_stuck sw then ([], None)
                else
                  ( [ { dclass = Hang; strategy = sname;
                        detail = "circuit live-lock: " ^ spin_procs spinning } ],
                    None )
            | Engine.Out_of_cycles ->
                if sw_stuck sw then ([], None)
                else
                  ( [ { dclass = Cycle_blowup; strategy = sname;
                        detail =
                          Printf.sprintf "still running at the %d-cycle budget"
                            budget } ],
                    None )
            | Engine.Sim_error m ->
                ( [ { dclass = Crash; strategy = sname;
                      detail = "simulator error: " ^ m } ],
                  None )
          in
          let live_divs =
            match eng.Engine.outcome with
            | Engine.Finished -> unsound_on_finish
            | Engine.Hang _ -> unsound_on_hang "deadlocked"
            | Engine.Livelock _ -> unsound_on_hang "live-locked (watchdog)"
            | Engine.Aborted _ | Engine.Out_of_cycles | Engine.Sim_error _ -> []
          in
          (proved_div @ live_divs @ divs, cycles))

(* Absint-vs-BMC cross-check: an assertion the abstract interpreter
   proved must not have a replay-confirmed counterexample — both
   verifiers over-approximate the same {!Interp} semantics, so a
   disagreement here is a real compiler/verifier bug, not stimulus
   luck.  Only meaningful on the unfaulted design (BMC models the
   original lowering), and only Violated counts: the bounded checker
   legitimately reports proved assertions as bounded/unknown. *)
let bmc_cross_check ~depth ~proved ~(absint : Analysis.Absint.result) prog =
  match Core.Verify.front_of prog with
  | exception e ->
      [ { dclass = Crash; strategy = "bmc"; detail = exn_detail "bmc front" e } ]
  | f ->
      List.concat_map
        (fun id ->
          match Core.Verify.check_target ~depth ~induction:0 f ~absint id with
          | exception e ->
              [ { dclass = Crash; strategy = "bmc";
                  detail = exn_detail (Printf.sprintf "bmc #%d" id) e } ]
          | r, _ -> (
              match r.Analysis.Verdict.pr_class with
              | Analysis.Verdict.Bviolated c ->
                  [ { dclass = Proved_fired; strategy = "bmc";
                      detail =
                        Printf.sprintf
                          "absint-proved assertion #%d violated by BMC at cycle \
                           %d (replay confirmed)"
                          id c } ]
              | _ -> []))
        proved

let check ?(strategies = default_strategies) ?(faults = []) ?(from_reset = false)
    ?(max_cycles = default_max_cycles) ?(watchdog = default_watchdog) ?bmc_depth
    prog =
  (* Re-inject through the printer and parser: real locations, and the
     corpus reproducer is byte-for-byte what was checked. *)
  let source = Front.Pretty.program_to_string prog in
  match Front.Typecheck.parse_and_check source with
  | exception e ->
      {
        source;
        divergences =
          [ { dclass = Crash; strategy = ""; detail = exn_detail "reinject" e } ];
        baseline_cycles = None;
      }
  | prog -> (
      let options =
        let o = Mine.Trace.auto_options prog in
        { o with Driver.max_cycles; watchdog = Some watchdog }
      in
      (* Analysis verdicts: a Proved assertion must never fire, in either
         execution. *)
      let analysis =
        try Some (Analysis.Absint.analyze prog) with _ -> None
      in
      let analysis_div =
        match analysis with
        | Some _ -> []
        | None ->
            [ { dclass = Crash; strategy = ""; detail = "analysis crashed" } ]
      in
      let proved =
        match analysis with Some a -> proved_ids a | None -> []
      in
      (* Static liveness verdict of the unfaulted design under this
         stimulus: cross-checked against what actually happens in both
         executions (a wrong claim in either direction is a
         Liveness_unsound divergence, a bug in the analyzer). *)
      let live, live_div =
        match
          Analysis.Live.analyze ~params:options.Driver.params
            ~feeds:(List.map (fun (s, vs) -> (s, List.length vs)) options.Driver.feeds)
            ~drains:options.Driver.drains prog
        with
        | v -> (v, [])
        | exception e ->
            ( Analysis.Live.Unknown "liveness analyzer crashed",
              [ { dclass = Crash; strategy = "";
                  detail = exn_detail "liveness" e } ] )
      in
      let bmc_div =
        match (bmc_depth, analysis) with
        | Some depth, Some absint when proved <> [] && faults = [] ->
            bmc_cross_check ~depth ~proved ~absint prog
        | _ -> []
      in
      (* Faults never reach the golden software run, so the compile
         backing it stays unfaulted. *)
      match Driver.compile ~strategy:Driver.baseline prog with
      | exception e ->
          {
            source;
            divergences =
              analysis_div @ live_div @ bmc_div
              @ [ { dclass = Crash; strategy = "baseline";
                    detail = exn_detail "compile" e } ];
            baseline_cycles = None;
          }
      | c_base ->
          let sw =
            try Driver.software_sim ~options c_base
            with e ->
              {
                Interp.outcome = Interp.Runtime_error (exn_detail "interp" e);
                failures = [];
                drained = [];
                log = [];
              }
          in
          let sw_div =
            match sw.Interp.outcome with
            | Interp.Runtime_error m ->
                [ { dclass = Crash; strategy = "";
                    detail = "software simulation: " ^ m } ]
            | _ -> []
          in
          (* A software abort on a Proved assertion is an analysis-vs-
             interpreter divergence in its own right. *)
          let sw_proved_div =
            match (sw.Interp.outcome, analysis) with
            | Interp.Aborted f, Some a ->
                List.concat
                  (List.mapi
                     (fun i (v : Analysis.Absint.verdict) ->
                       if
                         v.vclass = Analysis.Absint.Proved
                         && v.vproc = f.Interp.fproc
                         && v.vloc = f.Interp.floc
                       then
                         [ { dclass = Proved_fired; strategy = "";
                             detail =
                               Printf.sprintf
                                 "proved assertion #%d fired in software" i } ]
                       else [])
                     a.Analysis.Absint.verdicts)
            | _ -> []
          in
          (* The interpreter is ground truth for the program's own
             semantics: a deadlock there refutes [Deadlock_free];
             completion refutes [Deadlock].  ([Fuel_exhausted] proves
             nothing in either direction.) *)
          let sw_live_div =
            match (live, sw.Interp.outcome) with
            | Analysis.Live.Deadlock_free k, Interp.Deadlocked _ ->
                [ { dclass = Liveness_unsound; strategy = "";
                    detail =
                      Printf.sprintf
                        "analyzer proved deadlock-free (bound %d) but software \
                         simulation deadlocked" k } ]
            | Analysis.Live.Deadlock w, Interp.Completed ->
                [ { dclass = Liveness_unsound; strategy = "";
                    detail =
                      "analyzer claimed certain deadlock ("
                      ^ Analysis.Live.witness_to_string w
                      ^ ") but software simulation completed" } ]
            | _ -> []
          in
          let golden_drained = sw.Interp.drained in
          if sw_div <> [] then
            (* the golden run itself crashed: nothing differential left *)
            {
              source;
              divergences = analysis_div @ live_div @ bmc_div @ sw_div;
              baseline_cycles = None;
            }
          else
            let per_strategy =
              List.map
                (fun s ->
                  ( s,
                    check_strategy ~options ~sw ~golden_drained ~proved ~live
                      ~from_reset ~faults ~prog s ))
                strategies
            in
            let baseline_cycles =
              List.fold_left
                (fun acc ((sname, _), (_, cycles)) ->
                  if sname = "baseline" then cycles else acc)
                None per_strategy
            in
            let ratio_div =
              match baseline_cycles with
              | None -> []
              | Some base ->
                  List.concat_map
                    (fun ((sname, _), (_, cycles)) ->
                      match cycles with
                      | Some c when c > (ratio_bound * base) + ratio_slack ->
                          [ { dclass = Cycle_blowup; strategy = sname;
                              detail =
                                Printf.sprintf
                                  "%d cycles vs %d baseline (bound %dx+%d)" c base
                                  ratio_bound ratio_slack } ]
                      | _ -> [])
                    per_strategy
            in
            {
              source;
              divergences =
                analysis_div @ live_div @ bmc_div @ sw_proved_div @ sw_live_div
                @ List.concat_map (fun (_, (divs, _)) -> divs) per_strategy
                @ ratio_div;
              baseline_cycles;
            })
