(** Differential co-simulation oracle.

    Runs one program through the software-simulation golden path
    ({!Interp} via {!Core.Driver.software_sim}) and through the
    cycle-accurate circuit ({!Sim.Engine}) under every assertion
    synthesis strategy, and classifies every way the two executions can
    disagree — the paper's Section 5.1 divergence, found mechanically.

    The oracle re-injects the program through the printer and parser
    before checking ([parse_and_check (program_to_string p)]): every
    node then carries a real source location (generated ASTs carry
    none), the check exercises the front end on every program, and a
    reproducer written to the corpus is checked by construction exactly
    as the in-memory program was.

    The testbench is derived from the program text alone with
    {!Mine.Trace.auto_options}, so any candidate the shrinker proposes
    — and any corpus file replayed later — carries its own stimulus. *)

type dclass =
  | Output_mismatch  (** drained streams differ from the golden run *)
  | Spurious_fire    (** circuit assertion fired; software run was clean *)
  | Missed_abort     (** software aborted on an assertion; circuit finished *)
  | Proved_fired     (** an assertion {!Analysis.Absint} proved still fired *)
  | Liveness_unsound
      (** {!Analysis.Live}'s verdict contradicts reality: a proved
          deadlock-free design deadlocked (in software simulation or in
          any circuit strategy's fault-free run), or a claimed certain
          deadlock completed.  Always a bug in the liveness analyzer. *)
  | Hang             (** one side hangs or live-locks while the other completes *)
  | Cycle_blowup     (** circuit ran past the cycle budget or ratio bound *)
  | Crash            (** toolchain exception, simulator error, interp error *)

type divergence = {
  dclass : dclass;
  strategy : string;  (** strategy name, or [""] when not strategy-specific *)
  detail : string;    (** human-readable: message, streams, process names *)
}

val class_name : dclass -> string

(** Stable identity of a divergence for corpus deduplication and report
    grouping: ["class"] or ["class:strategy"]. *)
val class_key : divergence -> string

type outcome = {
  source : string;  (** the program as checked (printed, re-elaborated) *)
  divergences : divergence list;
      (** empty = all executions agree; order is deterministic
          (program-level first, then strategy table order) *)
  baseline_cycles : int option;
      (** circuit cycles of the finished baseline run, for bench rates *)
}

val agrees : outcome -> bool

(** Strategy table checked by default: every canonical strategy except
    the carte transport flavour (same policy as the campaign engine). *)
val default_strategies : (string * Core.Driver.strategy) list

val default_max_cycles : int  (** 20_000 *)

val default_watchdog : int  (** 500 *)

(** [check p] runs the full differential comparison.  [faults] are
    injected into every circuit compile (never into the golden software
    run) — the torture tests use a known translation fault to make a
    deterministic divergence on demand.  [max_cycles] bounds every
    circuit run and [watchdog] arms the live-lock detector, so a
    generator- or shrinker-induced livelock degrades to a classified
    {!Hang}/{!Cycle_blowup} instead of wedging the process.
    [bmc_depth] additionally cross-checks every Absint-proved assertion
    against the bounded model checker to that depth: a replay-confirmed
    BMC counterexample for a proved assertion is a {!Proved_fired}
    divergence with strategy ["bmc"] — a genuine verifier bug, since
    both sides over-approximate the same semantics.  (Skipped under
    fault injection: BMC models the unfaulted design.)

    A single fault with an enumerated padded twin is evaluated through
    the campaign's fork-point path: compile the all-sites-padded design
    once, run it unarmed to find the site's first activation, then
    replay the shared prefix with the pad armed under a cycle budget
    trimmed to the ratio bound.  [from_reset] (default [false]) is the
    escape hatch: inject every fault into a separate compile and
    simulate from cycle zero, the pre-split-stream behaviour.  The
    divergence classes agree between the two paths (details such as
    cycle counts may differ — padding perturbs the schedule).

    Never raises: toolchain failures classify as {!Crash}. *)
val check :
  ?strategies:(string * Core.Driver.strategy) list ->
  ?faults:Faults.Fault.t list ->
  ?from_reset:bool ->
  ?max_cycles:int ->
  ?watchdog:int ->
  ?bmc_depth:int ->
  Front.Ast.program ->
  outcome
