(** Deterministic pseudo-random stream for the torture generator
    (splitmix64; see {!Rng} interface for why it is hand-rolled). *)

type t = { mutable state : int64 }

let make seed = { state = seed }

(* splitmix64 (Steele, Lea & Flood): one 64-bit multiply-xor-shift chain
   per output word.  Passes BigCrush; more than enough to diversify
   generated programs, and trivially stable across platforms. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* take the high bits through a mod: n is tiny (grammar fan-out), so
     modulo bias is irrelevant next to determinism *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let chance t ~pct = int t 100 < pct

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if k < w then v else pick (k - w) rest
  in
  pick k pairs

let split t = make (next t)
