(** Deterministic pseudo-random stream for the torture generator.

    A splitmix64 generator implemented locally so that a seeded fuzz run
    is byte-identical across OCaml versions, platforms and [--jobs]
    values — [Stdlib.Random]'s algorithm is not part of its interface,
    ours is.  Every generated program is a pure function of its seed. *)

type t

val make : int64 -> t

(** The next raw 64-bit word of the stream. *)
val next : t -> int64

(** Uniform integer in [\[0, n)].  @raise Invalid_argument when [n <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** [chance t ~pct] is true [pct] percent of the time. *)
val chance : t -> pct:int -> bool

(** Uniform choice from a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Weighted choice: [(weight, value)] pairs, weights positive. *)
val weighted : t -> (int * 'a) list -> 'a

(** An independent child stream: deterministically derived, advancing
    the parent once.  Used to give program [i] of a run its own seed. *)
val split : t -> t
