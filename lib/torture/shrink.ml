(** Delta-debugging shrinker — see {!Shrink} interface. *)

open Front.Ast

type stats = {
  attempts : int;
  accepted : int;
  orig_lines : int;
  min_lines : int;
}

let line_count prog =
  let s = Front.Pretty.program_to_string prog in
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

(* --- Indexed statement traversal ---------------------------------------- *)

(* Statements are addressed by DFS pre-order position across all process
   bodies (for-header init/step statements are not addressed — they are
   part of the header's printed shape).  [edit] returns the replacement
   list: [[]] deletes, children unwrap.  Returns [None] when [n] is out
   of range or [edit] declines. *)
let stmt_edit prog n (edit : stmt -> stmt list option) : program option =
  let k = ref (-1) in
  let applied = ref false in
  let rec go_stmts stmts = List.concat_map go_stmt stmts
  and go_stmt st =
    incr k;
    if !k = n then
      match edit st with
      | Some repl ->
          applied := true;
          repl
      | None -> [ st ]
    else
      match st.s with
      | If (c, t, f) -> [ { st with s = If (c, go_stmts t, go_stmts f) } ]
      | While (c, b) -> [ { st with s = While (c, go_stmts b) } ]
      | For (h, b) -> [ { st with s = For (h, go_stmts b) } ]
      | Block b -> [ { st with s = Block (go_stmts b) } ]
      | Decl _ | Assign _ | Assert _ | Stream_read _ | Stream_write _
      | Return _ | Tapstmt _ | Const_array _ ->
          [ st ]
  in
  let procs = List.map (fun p -> { p with body = go_stmts p.body }) prog.procs in
  if !applied then Some { prog with procs } else None

let count_stmts prog =
  let k = ref 0 in
  let rec go st =
    incr k;
    match st.s with
    | If (_, t, f) ->
        List.iter go t;
        List.iter go f
    | While (_, b) | For (_, b) | Block b -> List.iter go b
    | Decl _ | Assign _ | Assert _ | Stream_read _ | Stream_write _ | Return _
    | Tapstmt _ | Const_array _ ->
        ()
  in
  List.iter (fun p -> List.iter go p.body) prog.procs;
  !k

(* --- Indexed expression traversal --------------------------------------- *)

(* Expressions are addressed by DFS pre-order position: statements in
   program order (descending into for-header init/step), then within
   each expression parent-before-children, left to right.  [f] maps the
   addressed node to its replacement; children of a replaced node are
   not re-visited. *)
let expr_map prog (f : int -> expr -> expr) : program * int =
  let k = ref (-1) in
  let rec go_e (x : expr) =
    incr k;
    let y = f !k x in
    if y != x then y
    else
      match x.e with
      | Int _ | Bool _ | Var _ -> x
      | Index (a, i) -> { x with e = Index (a, go_e i) }
      | Unop (op, a) -> { x with e = Unop (op, go_e a) }
      | Binop (op, a, b) ->
          let a' = go_e a in
          let b' = go_e b in
          { x with e = Binop (op, a', b') }
      | Cast (t, a) -> { x with e = Cast (t, go_e a) }
      | Call (g, args) -> { x with e = Call (g, List.map go_e args) }
  in
  let go_lv = function Lvar v -> Lvar v | Lindex (a, i) -> Lindex (a, go_e i) in
  let rec go_s st = { st with s = go_sn st.s }
  and go_sn = function
    | Decl (ty, nm, Some e) -> Decl (ty, nm, Some (go_e e))
    | Decl _ as s -> s
    | Assign (lv, e) ->
        let lv' = go_lv lv in
        Assign (lv', go_e e)
    | If (c, t, fl) -> If (go_e c, List.map go_s t, List.map go_s fl)
    | While (c, b) -> While (go_e c, List.map go_s b)
    | For (h, b) ->
        let init = Option.map go_s h.init in
        let cond = go_e h.cond in
        let step = Option.map go_s h.step in
        For ({ h with init; cond; step }, List.map go_s b)
    | Assert (c, txt) -> Assert (go_e c, txt)
    | Stream_read (lv, s) -> Stream_read (go_lv lv, s)
    | Stream_write (s, e) -> Stream_write (s, go_e e)
    | Return (Some e) -> Return (Some (go_e e))
    | Block b -> Block (List.map go_s b)
    | (Return None | Tapstmt _ | Const_array _) as s -> s
  in
  let procs = List.map (fun p -> { p with body = List.map go_s p.body }) prog.procs in
  ({ prog with procs }, !k + 1)

let count_exprs prog = snd (expr_map prog (fun _ x -> x))

let get_expr prog n =
  let found = ref None in
  ignore
    (expr_map prog (fun i x ->
         if i = n && !found = None then found := Some x;
         x));
  !found

let replace_expr prog n repl =
  fst (expr_map prog (fun i x -> if i = n then repl else x))

(* Reduction candidates for one node, strongest first: the literal [0],
   then each immediate operand.  Literal nodes are already minimal. *)
let expr_candidates (x : expr) =
  match x.e with
  | Int _ | Bool _ -> []
  | _ ->
      let zero = { x with e = Int 0L } in
      let children =
        match x.e with
        | Int _ | Bool _ | Var _ -> []
        | Index (_, i) -> [ i ]
        | Unop (_, a) | Cast (_, a) -> [ a ]
        | Binop (_, a, b) -> [ a; b ]
        | Call (_, args) -> args
      in
      zero :: children

let delete_stmt prog n = stmt_edit prog n (fun _ -> Some [])

let unwrap_stmt st =
  match st.s with
  | If (_, t, fl) -> Some (t @ fl)
  | While (_, b) | For (_, b) | Block b -> Some b
  | Decl _ | Assign _ | Assert _ | Stream_read _ | Stream_write _ | Return _
  | Tapstmt _ | Const_array _ ->
      None

(* --- The greedy fixpoint loop ------------------------------------------- *)

(* Strictly decreasing size measure: statement count, then expression
   count, then printed length.  Acceptance requires a strict decrease,
   which makes the greedy loop terminate even though printing can
   re-expand a substitution (a typed literal reparses as a cast). *)
let measure prog =
  ( count_stmts prog,
    count_exprs prog,
    String.length (Front.Pretty.program_to_string prog) )

let shrink ?(max_attempts = 20_000) ~keep prog0 =
  let attempts = ref 0 and accepted = ref 0 in
  let budget () = !attempts < max_attempts in
  let cur = ref prog0 in
  (* Candidates go back through print → parse → elaborate, exactly like
     the oracle's own re-injection: the accepted program is well-typed
     and its printed form is what [keep] judged. *)
  let try_cand cand =
    if not (budget ()) then None
    else begin
      incr attempts;
      match
        Front.Typecheck.parse_and_check (Front.Pretty.program_to_string cand)
      with
      | exception _ -> None
      | p ->
          if compare (measure p) (measure !cur) < 0 && keep p then begin
            incr accepted;
            Some p
          end
          else None
    end
  in
  let changed = ref true in
  while !changed && budget () do
    changed := false;
    (* 1. whole processes *)
    let i = ref 0 in
    while !i < List.length !cur.procs && List.length !cur.procs > 1 && budget ()
    do
      match try_cand { !cur with procs = drop_nth !i !cur.procs } with
      | Some p ->
          cur := p;
          changed := true
      | None -> incr i
    done;
    (* 2. stream declarations (a still-referenced stream fails the
       re-elaboration gate and is rejected for free) *)
    let i = ref 0 in
    while !i < List.length !cur.streams && budget () do
      match try_cand { !cur with streams = drop_nth !i !cur.streams } with
      | Some p ->
          cur := p;
          changed := true
      | None -> incr i
    done;
    (* 3. statement deletion *)
    let i = ref 0 in
    while !i < count_stmts !cur && budget () do
      match stmt_edit !cur !i (fun _ -> Some []) with
      | None -> incr i
      | Some cand -> (
          match try_cand cand with
          | Some p ->
              cur := p;
              changed := true (* indices shifted: retry the same slot *)
          | None -> incr i)
    done;
    (* 4. control unwrapping *)
    let i = ref 0 in
    while !i < count_stmts !cur && budget () do
      match stmt_edit !cur !i unwrap_stmt with
      | None -> incr i
      | Some cand -> (
          match try_cand cand with
          | Some p ->
              cur := p;
              changed := true
          | None -> incr i)
    done;
    (* 5. expression reduction *)
    let i = ref 0 in
    while !i < count_exprs !cur && budget () do
      let reduced =
        match get_expr !cur !i with
        | None -> None
        | Some x ->
            List.fold_left
              (fun acc repl ->
                match acc with
                | Some _ -> acc
                | None -> try_cand (replace_expr !cur !i repl))
              None (expr_candidates x)
      in
      match reduced with
      | Some p ->
          cur := p;
          changed := true (* the slot now holds the replacement: retry *)
      | None -> incr i
    done
  done;
  ( !cur,
    {
      attempts = !attempts;
      accepted = !accepted;
      orig_lines = line_count prog0;
      min_lines = line_count !cur;
    } )
