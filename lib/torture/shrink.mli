(** Auto-shrinker: delta-debugging a divergent program to a minimal
    reproducer.

    Greedy fixpoint over a deterministic transformation schedule —
    whole-process removal, stream removal, statement deletion, control
    unwrapping (a loop or conditional replaced by its body), and
    expression reduction (a node replaced by [0] or by one of its own
    operands).  Every candidate is re-injected through the printer,
    parser and type checker before the [keep] predicate sees it, so a
    shrunk program is well-typed by construction and its printed form is
    exactly what was tested.

    The result is 1-minimal with respect to the schedule: no single
    further transformation step preserves [keep].  Shrinking is
    deterministic — same input program and predicate, same output. *)

type stats = {
  attempts : int;  (** candidates proposed (including rejected ones) *)
  accepted : int;  (** candidates that kept the behaviour *)
  orig_lines : int;  (** printed line count before shrinking *)
  min_lines : int;  (** printed line count of the result *)
}

(** Printed line count of a program — the corpus budget metric. *)
val line_count : Front.Ast.program -> int

(** Number of statements addressable by {!delete_stmt} (DFS pre-order
    across all process bodies). *)
val count_stmts : Front.Ast.program -> int

(** [delete_stmt p n] removes the [n]-th addressable statement, or
    returns [None] when [n] is out of range.  This is exactly the
    shrinker's own statement-deletion step, exposed so the test suite
    can check 1-minimality: on a fully shrunk program, no single
    deletion that survives re-elaboration may preserve the
    divergence. *)
val delete_stmt : Front.Ast.program -> int -> Front.Ast.program option

(** [shrink ~keep p] reduces [p] while [keep] holds.  [keep] receives
    only candidates that survive print → parse → elaborate; it should
    return [true] when the candidate still exhibits the divergence being
    minimized (same oracle class keys, typically).  [p] itself is
    assumed to satisfy [keep].  [max_attempts] bounds predicate calls
    (default 20_000) so shrinking always terminates promptly. *)
val shrink :
  ?max_attempts:int ->
  keep:(Front.Ast.program -> bool) ->
  Front.Ast.program ->
  Front.Ast.program * stats
