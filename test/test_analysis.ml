(* Static assertion verifier and lint suite tests: domain soundness
   against the concrete Value semantics, the Proved/Violated/Unknown
   classifier, witness replay through the interpreter, whole-corpus
   "proved assertions never fire" sweeps, the five lints, and the
   --prune-proved compile path. *)

open Front
module A = Analysis.Absint
module D = Analysis.Domain
module Diag = Analysis.Diag
module Check = Analysis.Check
module Driver = Core.Driver
module V = Interp.Value

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Source files live in examples/; dune runs tests from _build subdirs. *)
let example path =
  List.find Sys.file_exists
    [ Filename.concat ".." path; path; Filename.concat "../.." path ]

(* --- abstract domain vs the concrete Value module ----------------------- *)

(* Every concrete result of Value.binop must be contained in the
   abstract result for every pair of intervals containing the operands.
   This is the soundness statement that makes Proved trustworthy. *)
let test_domain_binop_sound () =
  let tys = Ast.[ Tint (Signed, W8); Tint (Unsigned, W8); Tint (Signed, W32); Tbool ] in
  let samples = [ -3L; -1L; 0L; 1L; 2L; 7L; 127L; 255L ] in
  let ops =
    Ast.
      [
        Add; Sub; Mul; Div; Mod; Shl; Shr; Lt; Le; Gt; Ge; Eq; Ne; Band; Bor; Bxor;
        Land; Lor;
      ]
  in
  let abstractions ty v =
    [ D.const v; D.join (D.const v) (D.const 0L); D.top_of_ty ty; D.top ]
  in
  List.iter
    (fun ty ->
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let wa = V.wrap_ty ty a and wb = V.wrap_ty ty b in
                  match V.binop op ty wa wb with
                  | exception _ -> () (* concrete division by zero etc. *)
                  | r ->
                      List.iter
                        (fun da ->
                          List.iter
                            (fun db ->
                              if not (D.leq (D.const r) (D.binop op ty da db)) then
                                Alcotest.failf
                                  "binop unsound: %s at %Ld,%Ld -> %Ld not in %s"
                                  (Ast.show_binop op) wa wb r
                                  (D.to_string (D.binop op ty da db)))
                            (abstractions ty wb))
                        (abstractions ty wa))
                samples)
            samples)
        ops)
    tys

let test_domain_unop_sound () =
  let tys = Ast.[ Tint (Signed, W8); Tint (Unsigned, W16); Tbool ] in
  let samples = [ -2L; -1L; 0L; 1L; 5L; 200L ] in
  List.iter
    (fun ty ->
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              let wa = V.wrap_ty ty a in
              match V.unop op ty wa with
              | exception _ -> ()
              | r ->
                  List.iter
                    (fun da ->
                      check tbool
                        (Printf.sprintf "unop %s %Ld" (Ast.show_unop op) wa)
                        true
                        (D.leq (D.const r) (D.unop op ty da)))
                    [ D.const wa; D.top_of_ty ty; D.top ])
            samples)
        Ast.[ Neg; Lnot; Bnot ])
    tys

(* refine_cmp keeps every concrete lhs for which the comparison really
   evaluated to the assumed branch. *)
let test_refine_cmp_sound () =
  let ty = Ast.Tint (Ast.Signed, Ast.W32) in
  let samples = [ -5L; -1L; 0L; 1L; 3L; 10L ] in
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let keep = V.binop op ty a b <> 0L in
              List.iter
                (fun da ->
                  List.iter
                    (fun db ->
                      let refined = D.refine_cmp op ty keep da db in
                      check tbool
                        (Printf.sprintf "refine %s %Ld %Ld" (Ast.show_binop op) a b)
                        true
                        (D.leq (D.const a) refined))
                    [ D.const b; D.join (D.const b) (D.const 0L); D.top_of_ty ty ])
                [ D.const a; D.join (D.const a) (D.const (-5L)); D.top_of_ty ty ])
            samples)
        samples)
    Ast.[ Lt; Le; Gt; Ge; Eq; Ne ]

(* Widening must reach a fixpoint on a strictly growing chain. *)
let test_widen_terminates () =
  let ty = Ast.Tint (Ast.Signed, Ast.W32) in
  let x = ref (D.const 0L) in
  let stable = ref false in
  for i = 1 to 100 do
    if not !stable then begin
      let grown = D.join !x (D.const (Int64.of_int (i * 3))) in
      let w = D.widen ty !x grown in
      if D.equal w !x then stable := true else x := w
    end
  done;
  check tbool "widening chain stabilizes" true !stable

(* --- the classifier ----------------------------------------------------- *)

let verdicts src = (A.analyze (elab src)).A.verdicts

let class_of v = A.class_name v.A.vclass

let test_classifier_proved () =
  let vs =
    verdicts
      "stream int32 out depth 16;\n\
       process hw p() {\n\
      \  int32 i;\n\
      \  int32 s;\n\
      \  s = 0;\n\
      \  for (i = 0; i < 10; i = i + 1) {\n\
      \    assert(i < 10);\n\
      \    assert(i >= 0);\n\
      \    s = s + i;\n\
      \  }\n\
      \  assert(i == 10);\n\
      \  stream_write(out, s);\n\
       }\n"
  in
  check tint "three verdicts" 3 (List.length vs);
  List.iteri
    (fun k v -> check Alcotest.string (Printf.sprintf "verdict %d" k) "proved" (class_of v))
    vs

let violated_src =
  "stream int32 out depth 16;\n\
   process hw p() {\n\
  \  int32 i;\n\
  \  i = 3;\n\
  \  assert(i > 5);\n\
  \  stream_write(out, i);\n\
   }\n"

let test_classifier_violated () =
  match verdicts violated_src with
  | [ v ] -> (
      match v.A.vclass with
      | A.Violated witness ->
          check tbool "witness binds i = 3" true (List.mem ("i", 3L) witness)
      | _ -> Alcotest.failf "expected violated, got %s" (class_of v))
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

let test_classifier_unknown () =
  (* A process parameter is unconstrained; the latent mine_demo bug must
     stay Unknown (never Proved) — the CI gate depends on this. *)
  let vs =
    verdicts
      "stream int32 out depth 16;\n\
       process hw p(int32 n) {\n\
      \  assert(n < 100);\n\
      \  stream_write(out, n);\n\
       }\n"
  in
  check tint "one verdict" 1 (List.length vs);
  check Alcotest.string "param compare unknown" "unknown" (class_of (List.hd vs));
  let demo = elab (read_file (example "examples/mine_demo.c")) in
  List.iter
    (fun v ->
      if v.A.vtext = "acc >= 0" then
        check Alcotest.string "mine_demo latent bug" "unknown" (class_of v))
    (A.analyze demo).A.verdicts

(* --- witness replay through the interpreter ----------------------------- *)

let test_witness_replays () =
  let prog = elab violated_src in
  match (A.analyze prog).A.verdicts with
  | [ v ] ->
      check Alcotest.string "violated" "violated" (class_of v);
      let compiled = Driver.compile ~strategy:Driver.parallelized prog in
      let options = { Driver.default_sim_options with drains = [ "out" ] } in
      let r = Driver.software_sim ~options ~nabort:true compiled in
      let fired =
        List.exists
          (fun (f : Interp.failure) ->
            f.Interp.fproc = v.A.vproc && Loc.equal f.Interp.floc v.A.vloc)
          r.Interp.failures
      in
      check tbool "violated assertion fires in the interpreter" true fired
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

let test_static_violation_aborts_compile () =
  let prog = elab violated_src in
  match Driver.compile ~strategy:Driver.parallelized ~prune_proved:true prog with
  | _ -> Alcotest.fail "expected Static_violation"
  | exception Driver.Static_violation [ v ] ->
      check Alcotest.string "aborts with the verdict" "violated" (class_of v)
  | exception Driver.Static_violation vs ->
      Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* --- soundness sweep: proved assertions never fire ----------------------- *)

(* For every program in the corpus, every assertion the verifier proves
   must stay silent across the whole derived-stimulus family (the same
   family the miner traces over), run under NABORT so later failures
   are visible too. *)
let sweep name prog =
  let proved =
    List.filter (fun v -> v.A.vclass = A.Proved) (A.analyze prog).A.verdicts
  in
  if proved <> [] then begin
    let compiled = Driver.compile ~strategy:Driver.parallelized prog in
    List.iter
      (fun (st : Mine.Trace.stimulus) ->
        let r = Driver.software_sim ~options:st.Mine.Trace.options ~nabort:true compiled in
        List.iter
          (fun (f : Interp.failure) ->
            if
              List.exists
                (fun v ->
                  v.A.vproc = f.Interp.fproc && Loc.equal v.A.vloc f.Interp.floc)
                proved
            then
              Alcotest.failf "%s/%s: proved assertion fired (%s)" name
                st.Mine.Trace.label f.Interp.ftext)
          r.Interp.failures)
      (Mine.Trace.variants (Mine.Trace.auto_options prog))
  end

let test_soundness_examples () =
  List.iter
    (fun file -> sweep file (Typecheck.parse_and_check ~file (read_file (example file))))
    [ "examples/fir.c"; "examples/mine_demo.c"; "examples/campaign.c" ]

let test_soundness_bundled () =
  List.iter
    (fun (w : Campaign.workload) -> sweep w.Campaign.wname w.Campaign.program)
    (Campaign.bundled ())

(* --- lint suite ---------------------------------------------------------- *)

let diags ?share_bits ?replicate src =
  (Check.report_of ?share_bits ?replicate (elab src)).Check.diags

let has_code c ds = List.exists (fun d -> d.Diag.code = c) ds

let severity_of c ds =
  (List.find (fun d -> d.Diag.code = c) ds).Diag.severity

let test_lint_bram_contention () =
  let src =
    "stream int32 out depth 16;\n\
     process hw p() {\n\
    \  int32 a[4];\n\
    \  int32 i;\n\
    \  for (i = 0; i < 4; i = i + 1) {\n\
    \    a[i] = i;\n\
    \  }\n\
    \  assert(a[0] >= 0);\n\
    \  stream_write(out, a[0]);\n\
     }\n"
  in
  check tbool "L101 when BRAMs are shared" true
    (has_code "INCA-L101" (diags ~replicate:false src));
  check tbool "silent when replicated" false
    (has_code "INCA-L101" (diags ~replicate:true src))

let test_lint_channel_overflow () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "stream int32 out depth 16;\nprocess hw p(int32 n) {\n";
  for k = 1 to 33 do
    Buffer.add_string b (Printf.sprintf "  assert(n != %d);\n" (10_000 + k))
  done;
  Buffer.add_string b "  stream_write(out, n);\n}\n";
  let src = Buffer.contents b in
  let ds = diags ~share_bits:32 src in
  check tbool "L102 at 33 asserts on a 32-bit channel" true (has_code "INCA-L102" ds);
  check tbool "L102 is an error" true (severity_of "INCA-L102" ds = Diag.Error);
  check tbool "no L102 when the channel fits" false
    (has_code "INCA-L102" (diags ~share_bits:64 src))

let test_lint_uninit_read () =
  let ds =
    diags
      "stream int32 out depth 16;\n\
       process hw p() {\n\
      \  int32 x;\n\
      \  int32 y;\n\
      \  y = x + 1;\n\
      \  assert(y > 0);\n\
      \  stream_write(out, y);\n\
       }\n"
  in
  check tbool "L103 on read-before-write" true (has_code "INCA-L103" ds)

let test_lint_undrained_stream () =
  let src depth =
    Printf.sprintf
      "stream int32 sink depth %d;\n\
       process hw p() {\n\
      \  int32 i;\n\
      \  for (i = 0; i < 8; i = i + 1) {\n\
      \    stream_write(sink, i);\n\
      \  }\n\
       }\n"
      depth
  in
  let shallow = diags (src 4) and deep = diags (src 16) in
  check tbool "L104 present" true (has_code "INCA-L104" shallow);
  check tbool "overflowing writer is a warning" true
    (severity_of "INCA-L104" shallow = Diag.Warning);
  check tbool "fitting writer is informational" true
    (has_code "INCA-L104" deep && severity_of "INCA-L104" deep = Diag.Info)

let test_lint_dead_assertion () =
  let ds =
    diags
      "stream int32 out depth 16;\n\
       process hw p(int32 n) {\n\
      \  assert(n < 100);\n\
      \  assert(n < 200);\n\
      \  stream_write(out, n);\n\
       }\n"
  in
  check tbool "L105 on the subsumed assertion" true (has_code "INCA-L105" ds)

(* --- report rendering ---------------------------------------------------- *)

let test_render_json_shape () =
  let r = Check.report_of (elab violated_src) in
  let js = Json.to_string (Check.json_of ~file:"test.c" r) in
  check tbool "json has class violated" true
    (let needle = "\"class\": \"violated\"" in
     let rec find i =
       i + String.length needle <= String.length js
       && (String.sub js i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  check tbool "json carries witness" true
    (let needle = "\"witness\"" in
     let rec find i =
       i + String.length needle <= String.length js
       && (String.sub js i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  check tbool "report failed" true (Check.failed r)

(* --- --prune-proved on the bundled DCT ----------------------------------- *)

let test_prune_dct () =
  let w =
    List.find
      (fun (w : Campaign.workload) -> w.Campaign.wname = "dct")
      (Campaign.bundled ())
  in
  let prog = w.Campaign.program in
  let base = Driver.compile ~strategy:Driver.parallelized prog in
  let pruned = Driver.compile ~strategy:Driver.parallelized ~prune_proved:true prog in
  let nb = List.length base.Driver.asserts and np = List.length pruned.Driver.asserts in
  check tbool "pruning removes at least one assertion" true (np < nb);
  check tbool "pruning saves ALUTs" true
    (pruned.Driver.area.Rtl.Area.aluts < base.Driver.area.Rtl.Area.aluts);
  check tbool "pruning saves registers" true
    (pruned.Driver.area.Rtl.Area.registers < base.Driver.area.Rtl.Area.registers);
  (* The pruned circuit still runs clean: dropped guards were true. *)
  let r = Driver.simulate ~options:w.Campaign.options pruned in
  check tint "pruned hardware sim has no failures" 0
    (List.length r.Driver.failed_assertions)

(* --- mining pre-filter ---------------------------------------------------- *)

let test_rank_static_discard () =
  (* Every invariant minable from this program is a compile-time fact,
     so the verifier discards it before the (expensive) fault sweep. *)
  let src =
    "stream int32 kout depth 16;\n\
     process hw konst() {\n\
    \  int32 c;\n\
    \  c = 7;\n\
    \  assert(c > 0);\n\
    \  stream_write(kout, c);\n\
     }\n"
  in
  let config =
    {
      Mine.Rank.strategy = ("parallelized", Driver.parallelized);
      max_candidates = 6;
      max_mutants = Some 4;
      budget = None;
      watchdog = None;
      jobs = Some 1;
    }
  in
  let r = Mine.Rank.mine ~config ~name:"konst" (elab src) in
  check tbool "statically proved candidates are dropped" true
    (r.Mine.Rank.static_proved >= 1)

let () =
  Alcotest.run "analysis"
    [
      ( "domain",
        [
          Alcotest.test_case "binop soundness grid" `Quick test_domain_binop_sound;
          Alcotest.test_case "unop soundness grid" `Quick test_domain_unop_sound;
          Alcotest.test_case "refine_cmp soundness" `Quick test_refine_cmp_sound;
          Alcotest.test_case "widening terminates" `Quick test_widen_terminates;
        ] );
      ( "classify",
        [
          Alcotest.test_case "proved" `Quick test_classifier_proved;
          Alcotest.test_case "violated with witness" `Quick test_classifier_violated;
          Alcotest.test_case "unknown" `Quick test_classifier_unknown;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "witness replays" `Quick test_witness_replays;
          Alcotest.test_case "violation aborts compile" `Quick
            test_static_violation_aborts_compile;
          Alcotest.test_case "examples corpus" `Slow test_soundness_examples;
          Alcotest.test_case "bundled apps" `Slow test_soundness_bundled;
        ] );
      ( "lint",
        [
          Alcotest.test_case "L101 bram contention" `Quick test_lint_bram_contention;
          Alcotest.test_case "L102 channel overflow" `Quick test_lint_channel_overflow;
          Alcotest.test_case "L103 uninit read" `Quick test_lint_uninit_read;
          Alcotest.test_case "L104 undrained stream" `Quick test_lint_undrained_stream;
          Alcotest.test_case "L105 dead assertion" `Quick test_lint_dead_assertion;
        ] );
      ( "report",
        [ Alcotest.test_case "json shape" `Quick test_render_json_shape ] );
      ( "prune",
        [ Alcotest.test_case "dct dividend" `Slow test_prune_dct ] );
      ( "mine",
        [ Alcotest.test_case "static discard" `Slow test_rank_static_discard ] );
    ]
