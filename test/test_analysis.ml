(* Static assertion verifier and lint suite tests: domain soundness
   against the concrete Value semantics, the Proved/Violated/Unknown
   classifier, witness replay through the interpreter, whole-corpus
   "proved assertions never fire" sweeps, the five lints, and the
   --prune-proved compile path. *)

open Front
module A = Analysis.Absint
module D = Analysis.Domain
module Diag = Analysis.Diag
module Check = Analysis.Check
module Driver = Core.Driver
module V = Interp.Value

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Source files live in examples/; dune runs tests from _build subdirs. *)
let example path =
  List.find Sys.file_exists
    [ Filename.concat ".." path; path; Filename.concat "../.." path ]

(* --- abstract domain vs the concrete Value module ----------------------- *)

(* Every concrete result of Value.binop must be contained in the
   abstract result for every pair of intervals containing the operands.
   This is the soundness statement that makes Proved trustworthy. *)
let test_domain_binop_sound () =
  let tys = Ast.[ Tint (Signed, W8); Tint (Unsigned, W8); Tint (Signed, W32); Tbool ] in
  let samples = [ -3L; -1L; 0L; 1L; 2L; 7L; 127L; 255L ] in
  let ops =
    Ast.
      [
        Add; Sub; Mul; Div; Mod; Shl; Shr; Lt; Le; Gt; Ge; Eq; Ne; Band; Bor; Bxor;
        Land; Lor;
      ]
  in
  let abstractions ty v =
    [ D.const v; D.join (D.const v) (D.const 0L); D.top_of_ty ty; D.top ]
  in
  List.iter
    (fun ty ->
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let wa = V.wrap_ty ty a and wb = V.wrap_ty ty b in
                  match V.binop op ty wa wb with
                  | exception _ -> () (* concrete division by zero etc. *)
                  | r ->
                      List.iter
                        (fun da ->
                          List.iter
                            (fun db ->
                              if not (D.leq (D.const r) (D.binop op ty da db)) then
                                Alcotest.failf
                                  "binop unsound: %s at %Ld,%Ld -> %Ld not in %s"
                                  (Ast.show_binop op) wa wb r
                                  (D.to_string (D.binop op ty da db)))
                            (abstractions ty wb))
                        (abstractions ty wa))
                samples)
            samples)
        ops)
    tys

let test_domain_unop_sound () =
  let tys = Ast.[ Tint (Signed, W8); Tint (Unsigned, W16); Tbool ] in
  let samples = [ -2L; -1L; 0L; 1L; 5L; 200L ] in
  List.iter
    (fun ty ->
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              let wa = V.wrap_ty ty a in
              match V.unop op ty wa with
              | exception _ -> ()
              | r ->
                  List.iter
                    (fun da ->
                      check tbool
                        (Printf.sprintf "unop %s %Ld" (Ast.show_unop op) wa)
                        true
                        (D.leq (D.const r) (D.unop op ty da)))
                    [ D.const wa; D.top_of_ty ty; D.top ])
            samples)
        Ast.[ Neg; Lnot; Bnot ])
    tys

(* refine_cmp keeps every concrete lhs for which the comparison really
   evaluated to the assumed branch. *)
let test_refine_cmp_sound () =
  let ty = Ast.Tint (Ast.Signed, Ast.W32) in
  let samples = [ -5L; -1L; 0L; 1L; 3L; 10L ] in
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let keep = V.binop op ty a b <> 0L in
              List.iter
                (fun da ->
                  List.iter
                    (fun db ->
                      let refined = D.refine_cmp op ty keep da db in
                      check tbool
                        (Printf.sprintf "refine %s %Ld %Ld" (Ast.show_binop op) a b)
                        true
                        (D.leq (D.const a) refined))
                    [ D.const b; D.join (D.const b) (D.const 0L); D.top_of_ty ty ])
                [ D.const a; D.join (D.const a) (D.const (-5L)); D.top_of_ty ty ])
            samples)
        samples)
    Ast.[ Lt; Le; Gt; Ge; Eq; Ne ]

(* Widening must reach a fixpoint on a strictly growing chain. *)
let test_widen_terminates () =
  let ty = Ast.Tint (Ast.Signed, Ast.W32) in
  let x = ref (D.const 0L) in
  let stable = ref false in
  for i = 1 to 100 do
    if not !stable then begin
      let grown = D.join !x (D.const (Int64.of_int (i * 3))) in
      let w = D.widen ty !x grown in
      if D.equal w !x then stable := true else x := w
    end
  done;
  check tbool "widening chain stabilizes" true !stable

(* --- the classifier ----------------------------------------------------- *)

let verdicts src = (A.analyze (elab src)).A.verdicts

let class_of v = A.class_name v.A.vclass

let test_classifier_proved () =
  let vs =
    verdicts
      "stream int32 out depth 16;\n\
       process hw p() {\n\
      \  int32 i;\n\
      \  int32 s;\n\
      \  s = 0;\n\
      \  for (i = 0; i < 10; i = i + 1) {\n\
      \    assert(i < 10);\n\
      \    assert(i >= 0);\n\
      \    s = s + i;\n\
      \  }\n\
      \  assert(i == 10);\n\
      \  stream_write(out, s);\n\
       }\n"
  in
  check tint "three verdicts" 3 (List.length vs);
  List.iteri
    (fun k v -> check Alcotest.string (Printf.sprintf "verdict %d" k) "proved" (class_of v))
    vs

let violated_src =
  "stream int32 out depth 16;\n\
   process hw p() {\n\
  \  int32 i;\n\
  \  i = 3;\n\
  \  assert(i > 5);\n\
  \  stream_write(out, i);\n\
   }\n"

let test_classifier_violated () =
  match verdicts violated_src with
  | [ v ] -> (
      match v.A.vclass with
      | A.Violated witness ->
          check tbool "witness binds i = 3" true (List.mem ("i", 3L) witness)
      | _ -> Alcotest.failf "expected violated, got %s" (class_of v))
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

let test_classifier_unknown () =
  (* A process parameter is unconstrained; the latent mine_demo bug must
     stay Unknown (never Proved) — the CI gate depends on this. *)
  let vs =
    verdicts
      "stream int32 out depth 16;\n\
       process hw p(int32 n) {\n\
      \  assert(n < 100);\n\
      \  stream_write(out, n);\n\
       }\n"
  in
  check tint "one verdict" 1 (List.length vs);
  check Alcotest.string "param compare unknown" "unknown" (class_of (List.hd vs));
  let demo = elab (read_file (example "examples/mine_demo.c")) in
  List.iter
    (fun v ->
      if v.A.vtext = "acc >= 0" then
        check Alcotest.string "mine_demo latent bug" "unknown" (class_of v))
    (A.analyze demo).A.verdicts

(* --- witness replay through the interpreter ----------------------------- *)

let test_witness_replays () =
  let prog = elab violated_src in
  match (A.analyze prog).A.verdicts with
  | [ v ] ->
      check Alcotest.string "violated" "violated" (class_of v);
      let compiled = Driver.compile ~strategy:Driver.parallelized prog in
      let options = { Driver.default_sim_options with drains = [ "out" ] } in
      let r = Driver.software_sim ~options ~nabort:true compiled in
      let fired =
        List.exists
          (fun (f : Interp.failure) ->
            f.Interp.fproc = v.A.vproc && Loc.equal f.Interp.floc v.A.vloc)
          r.Interp.failures
      in
      check tbool "violated assertion fires in the interpreter" true fired
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

let test_static_violation_aborts_compile () =
  let prog = elab violated_src in
  match Driver.compile ~strategy:Driver.parallelized ~prune_proved:true prog with
  | _ -> Alcotest.fail "expected Static_violation"
  | exception Driver.Static_violation [ v ] ->
      check Alcotest.string "aborts with the verdict" "violated" (class_of v)
  | exception Driver.Static_violation vs ->
      Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* --- soundness sweep: proved assertions never fire ----------------------- *)

(* For every program in the corpus, every assertion the verifier proves
   must stay silent across the whole derived-stimulus family (the same
   family the miner traces over), run under NABORT so later failures
   are visible too. *)
let sweep name prog =
  let proved =
    List.filter (fun v -> v.A.vclass = A.Proved) (A.analyze prog).A.verdicts
  in
  if proved <> [] then begin
    let compiled = Driver.compile ~strategy:Driver.parallelized prog in
    List.iter
      (fun (st : Mine.Trace.stimulus) ->
        let r = Driver.software_sim ~options:st.Mine.Trace.options ~nabort:true compiled in
        List.iter
          (fun (f : Interp.failure) ->
            if
              List.exists
                (fun v ->
                  v.A.vproc = f.Interp.fproc && Loc.equal v.A.vloc f.Interp.floc)
                proved
            then
              Alcotest.failf "%s/%s: proved assertion fired (%s)" name
                st.Mine.Trace.label f.Interp.ftext)
          r.Interp.failures)
      (Mine.Trace.variants (Mine.Trace.auto_options prog))
  end

let test_soundness_examples () =
  List.iter
    (fun file -> sweep file (Typecheck.parse_and_check ~file (read_file (example file))))
    [ "examples/fir.c"; "examples/mine_demo.c"; "examples/campaign.c" ]

let test_soundness_bundled () =
  List.iter
    (fun (w : Campaign.workload) -> sweep w.Campaign.wname w.Campaign.program)
    (Campaign.bundled ())

(* --- lint suite ---------------------------------------------------------- *)

let diags ?share_bits ?replicate src =
  (Check.report_of ?share_bits ?replicate (elab src)).Check.diags

let has_code c ds = List.exists (fun d -> d.Diag.code = c) ds

let severity_of c ds =
  (List.find (fun d -> d.Diag.code = c) ds).Diag.severity

let test_lint_bram_contention () =
  let src =
    "stream int32 out depth 16;\n\
     process hw p() {\n\
    \  int32 a[4];\n\
    \  int32 i;\n\
    \  for (i = 0; i < 4; i = i + 1) {\n\
    \    a[i] = i;\n\
    \  }\n\
    \  assert(a[0] >= 0);\n\
    \  stream_write(out, a[0]);\n\
     }\n"
  in
  check tbool "L101 when BRAMs are shared" true
    (has_code "INCA-L101" (diags ~replicate:false src));
  check tbool "silent when replicated" false
    (has_code "INCA-L101" (diags ~replicate:true src))

let test_lint_channel_overflow () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "stream int32 out depth 16;\nprocess hw p(int32 n) {\n";
  for k = 1 to 33 do
    Buffer.add_string b (Printf.sprintf "  assert(n != %d);\n" (10_000 + k))
  done;
  Buffer.add_string b "  stream_write(out, n);\n}\n";
  let src = Buffer.contents b in
  let ds = diags ~share_bits:32 src in
  check tbool "L102 at 33 asserts on a 32-bit channel" true (has_code "INCA-L102" ds);
  check tbool "L102 is an error" true (severity_of "INCA-L102" ds = Diag.Error);
  check tbool "no L102 when the channel fits" false
    (has_code "INCA-L102" (diags ~share_bits:64 src))

let test_lint_uninit_read () =
  let ds =
    diags
      "stream int32 out depth 16;\n\
       process hw p() {\n\
      \  int32 x;\n\
      \  int32 y;\n\
      \  y = x + 1;\n\
      \  assert(y > 0);\n\
      \  stream_write(out, y);\n\
       }\n"
  in
  check tbool "L103 on read-before-write" true (has_code "INCA-L103" ds)

let test_lint_undrained_stream () =
  let src depth =
    Printf.sprintf
      "stream int32 sink depth %d;\n\
       process hw p() {\n\
      \  int32 i;\n\
      \  for (i = 0; i < 8; i = i + 1) {\n\
      \    stream_write(sink, i);\n\
      \  }\n\
       }\n"
      depth
  in
  let shallow = diags (src 4) and deep = diags (src 16) in
  check tbool "L104 present" true (has_code "INCA-L104" shallow);
  check tbool "overflowing writer is a warning" true
    (severity_of "INCA-L104" shallow = Diag.Warning);
  check tbool "fitting writer is informational" true
    (has_code "INCA-L104" deep && severity_of "INCA-L104" deep = Diag.Info)

let test_lint_dead_assertion () =
  let ds =
    diags
      "stream int32 out depth 16;\n\
       process hw p(int32 n) {\n\
      \  assert(n < 100);\n\
      \  assert(n < 200);\n\
      \  stream_write(out, n);\n\
       }\n"
  in
  check tbool "L105 on the subsumed assertion" true (has_code "INCA-L105" ds)

(* --- report rendering ---------------------------------------------------- *)

let test_render_json_shape () =
  let r = Check.report_of (elab violated_src) in
  let js = Json.to_string (Check.json_of ~file:"test.c" r) in
  check tbool "json has class violated" true
    (let needle = "\"class\": \"violated\"" in
     let rec find i =
       i + String.length needle <= String.length js
       && (String.sub js i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  check tbool "json carries witness" true
    (let needle = "\"witness\"" in
     let rec find i =
       i + String.length needle <= String.length js
       && (String.sub js i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  check tbool "report failed" true (Check.failed r)

(* --- --prune-proved on the bundled DCT ----------------------------------- *)

let test_prune_dct () =
  let w =
    List.find
      (fun (w : Campaign.workload) -> w.Campaign.wname = "dct")
      (Campaign.bundled ())
  in
  let prog = w.Campaign.program in
  let base = Driver.compile ~strategy:Driver.parallelized prog in
  let pruned = Driver.compile ~strategy:Driver.parallelized ~prune_proved:true prog in
  let nb = List.length base.Driver.asserts and np = List.length pruned.Driver.asserts in
  check tbool "pruning removes at least one assertion" true (np < nb);
  check tbool "pruning saves ALUTs" true
    (pruned.Driver.area.Rtl.Area.aluts < base.Driver.area.Rtl.Area.aluts);
  check tbool "pruning saves registers" true
    (pruned.Driver.area.Rtl.Area.registers < base.Driver.area.Rtl.Area.registers);
  (* The pruned circuit still runs clean: dropped guards were true. *)
  let r = Driver.simulate ~options:w.Campaign.options pruned in
  check tint "pruned hardware sim has no failures" 0
    (List.length r.Driver.failed_assertions)

(* --- mining pre-filter ---------------------------------------------------- *)

let test_rank_static_discard () =
  (* Every invariant minable from this program is a compile-time fact,
     so the verifier discards it before the (expensive) fault sweep. *)
  let src =
    "stream int32 kout depth 16;\n\
     process hw konst() {\n\
    \  int32 c;\n\
    \  c = 7;\n\
    \  assert(c > 0);\n\
    \  stream_write(kout, c);\n\
     }\n"
  in
  let config =
    {
      Mine.Rank.strategy = ("parallelized", Driver.parallelized);
      max_candidates = 6;
      max_mutants = Some 4;
      budget = None;
      watchdog = None;
      jobs = Some 1;
    }
  in
  let r = Mine.Rank.mine ~config ~name:"konst" (elab src) in
  check tbool "statically proved candidates are dropped" true
    (r.Mine.Rank.static_proved >= 1)

(* --- liveness: Bound / Chan / Live and the INCA-L1xx lint family --------- *)

module Live = Analysis.Live
module Chan = Analysis.Chan
module Bound = Analysis.Bound

let proc_named prog name =
  List.find (fun (p : Ast.proc) -> p.Ast.pname = name) prog.Ast.procs

(* Matched rates: prod pushes 8 tokens on a, cons pops all 8 and pushes
   8 on the externally drained b. *)
let matched_src =
  {|
stream int32 a depth 4;
stream int32 b depth 4;
process hw prod() {
  int32 i;
  for (i = 0; i < 8; i = i + 1) {
    stream_write(a, i * 3);
  }
}
process hw cons() {
  int32 i;
  for (i = 0; i < 8; i = i + 1) {
    int32 x;
    x = stream_read(a);
    stream_write(b, x + 1);
  }
}
|}

(* The committed canary, inline: the consumer reads one token too many. *)
let starved_src =
  {|
stream int32 a depth 4;
stream int32 b depth 4;
process hw prod() {
  int32 i;
  for (i = 0; i < 8; i = i + 1) {
    stream_write(a, i);
  }
}
process hw cons() {
  int32 i;
  for (i = 0; i < 9; i = i + 1) {
    int32 x;
    x = stream_read(a);
    stream_write(b, x);
  }
}
|}

(* Each process reads the other's output before producing its own:
   both block on their first read forever. *)
let circular_src =
  {|
stream int32 ab depth 4;
stream int32 ba depth 4;
process hw pa() {
  int32 i;
  for (i = 0; i < 4; i = i + 1) {
    int32 x;
    x = stream_read(ba);
    stream_write(ab, x + 1);
  }
}
process hw pb() {
  int32 i;
  for (i = 0; i < 4; i = i + 1) {
    int32 x;
    x = stream_read(ab);
    stream_write(ba, x + 1);
  }
}
|}

let test_bound_of_for () =
  let prog = elab matched_src in
  match Chan.loop_headers (proc_named prog "prod") with
  | [ Chan.For_loop (h, body) ] ->
      check tbool "closed loop is Exact 8" true (Bound.of_for h body = Bound.Exact 8);
      (* the off-by-one fault shifts the compare's bound operand, so the
         mutant trip count comes from the shifted bound, not trips+-1 *)
      check tbool "+1 shifts to 9" true (Bound.shifted_trips ~delta:1L h body = Some 9);
      check tbool "-1 shifts to 7" true (Bound.shifted_trips ~delta:(-1L) h body = Some 7)
  | _ -> Alcotest.fail "expected exactly one for loop"

let test_bound_param_env () =
  let prog =
    elab
      "stream int32 o depth 4;\n\
       process hw p(int32 n) {\n\
      \  int32 i;\n\
      \  for (i = 0; i < n; i = i + 1) {\n\
      \    stream_write(o, i);\n\
      \  }\n\
       }\n"
  in
  match Chan.loop_headers (proc_named prog "p") with
  | [ Chan.For_loop (h, body) ] ->
      check tbool "open bound is not Exact" true
        (match Bound.of_for h body with Bound.Exact _ -> false | _ -> true);
      check tbool "param env closes it" true
        (Bound.of_for ~env:[ ("n", 6L) ] h body = Bound.Exact 6)
  | _ -> Alcotest.fail "expected exactly one for loop"

let test_chan_trace_exact () =
  let prog = elab matched_src in
  match Chan.trace prog (proc_named prog "prod") with
  | Error e -> Alcotest.fail ("trace failed: " ^ e)
  | Ok t ->
      check tint "8 ops" 8 (List.length t.Chan.t_ops);
      check tbool "all writes of a, site 0" true
        (List.for_all (fun op -> op = Chan.Write ("a", 0)) t.Chan.t_ops);
      (match Chan.trace ~trips_override:(0, 5) prog (proc_named prog "prod") with
      | Ok t5 -> check tint "trips override forces 5" 5 (List.length t5.Chan.t_ops)
      | Error e -> Alcotest.fail ("override trace failed: " ^ e))

let test_live_deadlock_free () =
  match Live.analyze ~drains:[ "b" ] (elab matched_src) with
  | Live.Deadlock_free k -> check tbool "cycle bound positive" true (k > 0)
  | v -> Alcotest.fail ("expected Deadlock_free, got " ^ Live.verdict_to_string v)

let test_live_read_past_last_write () =
  match Live.analyze ~drains:[ "b" ] (elab starved_src) with
  | Live.Deadlock w ->
      check tbool "reason is starvation" true (w.Live.w_reason = Live.Read_past_last_write);
      check tbool "witness names the blocked reader" true
        (List.exists
           (fun (b : Live.blocked) -> b.Live.b_proc = "cons" && b.Live.b_stream = "a")
           w.Live.w_blocked)
  | v -> Alcotest.fail ("expected Deadlock, got " ^ Live.verdict_to_string v)

let test_live_circular_wait () =
  match Live.analyze (elab circular_src) with
  | Live.Deadlock w ->
      check tbool "reason is a cycle" true (w.Live.w_reason = Live.Circular_wait);
      check tint "both processes blocked" 2 (List.length w.Live.w_blocked)
  | v -> Alcotest.fail ("expected Deadlock, got " ^ Live.verdict_to_string v)

let test_live_external_feed_unknown () =
  (* a stream read but never written in-design must make the verdict
     Unknown (the testbench may feed it) — never a false Deadlock *)
  let src =
    "stream int32 xin depth 4;\n\
     stream int32 o depth 4;\n\
     process hw p() {\n\
    \  int32 i;\n\
    \  for (i = 0; i < 4; i = i + 1) {\n\
    \    int32 x;\n\
    \    x = stream_read(xin);\n\
    \    stream_write(o, x);\n\
    \  }\n\
     }\n"
  in
  (match Live.analyze ~drains:[ "o" ] (elab src) with
  | Live.Unknown _ -> ()
  | v -> Alcotest.fail ("expected Unknown, got " ^ Live.verdict_to_string v));
  (* with the feed declared, the same design proves out *)
  match Live.analyze ~feeds:[ ("xin", 4) ] ~drains:[ "o" ] (elab src) with
  | Live.Deadlock_free _ -> ()
  | v -> Alcotest.fail ("expected Deadlock_free, got " ^ Live.verdict_to_string v)

let test_lint_liveness_deadlock_codes () =
  let starved = diags starved_src in
  check tbool "L106 present" true (has_code "INCA-L106" starved);
  check tbool "L106 is an error" true (severity_of "INCA-L106" starved = Diag.Error);
  let circular = diags circular_src in
  check tbool "L107 present" true (has_code "INCA-L107" circular);
  check tbool "L107 is an error" true (severity_of "INCA-L107" circular = Diag.Error);
  let clean = diags matched_src in
  check tbool "no deadlock codes on a live design" false
    (has_code "INCA-L106" clean || has_code "INCA-L107" clean)

let test_lint_watchdog_budget () =
  let rep w = Check.report_of ?watchdog:w (elab matched_src) in
  let bound =
    match (rep None).Check.liveness with
    | Live.Deadlock_free k -> k
    | v -> Alcotest.fail ("expected Deadlock_free, got " ^ Live.verdict_to_string v)
  in
  let tight = (rep (Some (bound - 1))).Check.diags in
  check tbool "L109 when the window is below the bound" true (has_code "INCA-L109" tight);
  check tbool "L109 is a warning" true (severity_of "INCA-L109" tight = Diag.Warning);
  let roomy = (rep (Some bound)).Check.diags in
  check tbool "L110 when the design finishes inside the window" true
    (has_code "INCA-L110" roomy);
  check tbool "L110 is informational" true (severity_of "INCA-L110" roomy = Diag.Info);
  check tbool "no watchdog lints without --watchdog" false
    (has_code "INCA-L109" (rep None).Check.diags
    || has_code "INCA-L110" (rep None).Check.diags)

let test_check_filter_codes () =
  let rep = Check.report_of (elab starved_src) in
  check tbool "unfiltered report fails on L106" true (Check.failed rep);
  let only = Check.filter_codes ~only:[ "INCA-L104" ] rep in
  check tbool "--only keeps just that family" true
    (List.for_all (fun d -> d.Diag.code = "INCA-L104") only.Check.diags
    && only.Check.diags <> []);
  check tbool "exit status follows the filtered set" false (Check.failed only);
  let ignored = Check.filter_codes ~ignore:[ "INCA-L106" ] rep in
  check tbool "--ignore drops the code" false (has_code "INCA-L106" ignored.Check.diags);
  check tbool "other diags survive --ignore" true (ignored.Check.diags <> []);
  check tbool "verdict lines are untouched" true
    (only.Check.verdicts = rep.Check.verdicts
    && ignored.Check.verdicts = rep.Check.verdicts)

(* NABORT-soundness on real designs: the analyzer must never claim a
   certain deadlock for a workload that actually runs to completion. *)
let test_live_no_false_deadlock_bundled () =
  List.iter
    (fun (w : Campaign.workload) ->
      let o = w.Campaign.options in
      match
        Live.analyze ~params:o.Driver.params
          ~feeds:(List.map (fun (s, vs) -> (s, List.length vs)) o.Driver.feeds)
          ~drains:o.Driver.drains w.Campaign.program
      with
      | Live.Deadlock wtn ->
          Alcotest.fail
            (Printf.sprintf "false deadlock on bundled %s: %s" w.Campaign.wname
               (Live.witness_to_string wtn))
      | Live.Deadlock_free _ | Live.Unknown _ -> ())
    (Campaign.bundled ())

let test_live_examples_canary () =
  let dir = Filename.dirname (example "examples/fir.c") in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".c" then
        let rep =
          Check.report_of (Typecheck.parse_and_check ~file:f (read_file (Filename.concat dir f)))
        in
        match rep.Check.liveness with
        | Live.Deadlock _ ->
            if f <> "deadlock.c" then Alcotest.fail ("false deadlock on examples/" ^ f)
        | Live.Deadlock_free _ | Live.Unknown _ ->
            if f = "deadlock.c" then
              Alcotest.fail "examples/deadlock.c must be reported as a certain deadlock")
    (Sys.readdir dir)

let () =
  Alcotest.run "analysis"
    [
      ( "domain",
        [
          Alcotest.test_case "binop soundness grid" `Quick test_domain_binop_sound;
          Alcotest.test_case "unop soundness grid" `Quick test_domain_unop_sound;
          Alcotest.test_case "refine_cmp soundness" `Quick test_refine_cmp_sound;
          Alcotest.test_case "widening terminates" `Quick test_widen_terminates;
        ] );
      ( "classify",
        [
          Alcotest.test_case "proved" `Quick test_classifier_proved;
          Alcotest.test_case "violated with witness" `Quick test_classifier_violated;
          Alcotest.test_case "unknown" `Quick test_classifier_unknown;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "witness replays" `Quick test_witness_replays;
          Alcotest.test_case "violation aborts compile" `Quick
            test_static_violation_aborts_compile;
          Alcotest.test_case "examples corpus" `Slow test_soundness_examples;
          Alcotest.test_case "bundled apps" `Slow test_soundness_bundled;
        ] );
      ( "lint",
        [
          Alcotest.test_case "L101 bram contention" `Quick test_lint_bram_contention;
          Alcotest.test_case "L102 channel overflow" `Quick test_lint_channel_overflow;
          Alcotest.test_case "L103 uninit read" `Quick test_lint_uninit_read;
          Alcotest.test_case "L104 undrained stream" `Quick test_lint_undrained_stream;
          Alcotest.test_case "L105 dead assertion" `Quick test_lint_dead_assertion;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "bound of closed for" `Quick test_bound_of_for;
          Alcotest.test_case "bound closes under params" `Quick test_bound_param_env;
          Alcotest.test_case "exact channel trace" `Quick test_chan_trace_exact;
          Alcotest.test_case "matched rates prove out" `Quick test_live_deadlock_free;
          Alcotest.test_case "read past last write" `Quick test_live_read_past_last_write;
          Alcotest.test_case "circular wait" `Quick test_live_circular_wait;
          Alcotest.test_case "external feed is unknown" `Quick
            test_live_external_feed_unknown;
          Alcotest.test_case "L106/L107 deadlock lints" `Quick
            test_lint_liveness_deadlock_codes;
          Alcotest.test_case "L109/L110 watchdog budget" `Quick test_lint_watchdog_budget;
          Alcotest.test_case "--only/--ignore filters" `Quick test_check_filter_codes;
          Alcotest.test_case "no false deadlock on bundled apps" `Slow
            test_live_no_false_deadlock_bundled;
          Alcotest.test_case "examples canary" `Slow test_live_examples_canary;
        ] );
      ( "report",
        [ Alcotest.test_case "json shape" `Quick test_render_json_shape ] );
      ( "prune",
        [ Alcotest.test_case "dct dividend" `Slow test_prune_dct ] );
      ( "mine",
        [ Alcotest.test_case "static discard" `Slow test_rank_static_discard ] );
    ]
