(* BMC subsystem tests: the CDCL solver on classic instances, AIG
   folding and hash-consing, bit-blast vs the concrete Value semantics,
   cycle-for-cycle model-vs-engine fire equivalence over torture
   programs under solver-free random environments, the Absint↔BMC
   cross-check oracle (a Proved assertion must never be Violated by a
   replay-confirmed counterexample), and the end-to-end prove pipeline:
   mine_demo's latent bug found and replayed, prove_demo's masked nibble
   proved by 1-induction where Absint says Unknown, pruning dividend,
   and byte-identical reports across job counts. *)

module Sat = Bmc.Sat
module Aig = Bmc.Aig
module Blast = Bmc.Blast
module Model = Bmc.Model
module Verify = Core.Verify
module Verdict = Analysis.Verdict
module Driver = Core.Driver
module Value = Interp.Value
module Gen = Torture.Gen
module Ast = Front.Ast

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let elab = Front.Typecheck.parse_and_check ~file:"test.c"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Source files live in examples/; dune runs tests from _build subdirs. *)
let example path =
  List.find Sys.file_exists
    [ Filename.concat ".." path; path; Filename.concat "../.." path ]

(* --- SAT solver ------------------------------------------------------------ *)

let test_sat_unit_propagation () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s and c = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a ];
  Sat.add_clause s [ Sat.negl a; Sat.pos b ];
  Sat.add_clause s [ Sat.negl b; Sat.pos c ];
  check tbool "implication chain is Sat" true (Sat.solve s = Sat.Sat);
  check tbool "a forced" true (Sat.value s a);
  check tbool "b propagated" true (Sat.value s b);
  check tbool "c propagated" true (Sat.value s c);
  (* the chain was solved by propagation alone: no search happened *)
  check tint "no conflicts" 0 (Sat.conflicts s)

(* PHP(n+1, n): n+1 pigeons into n holes, classically UNSAT and
   resolution-hard enough to force real conflict analysis. *)
let pigeonhole n =
  let s = Sat.create () in
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.new_var s)) in
  for p = 0 to n do
    Sat.add_clause s (List.init n (fun h -> Sat.pos v.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Sat.add_clause s [ Sat.negl v.(p1).(h); Sat.negl v.(p2).(h) ]
      done
    done
  done;
  s

let test_sat_pigeonhole () =
  let s = pigeonhole 3 in
  check tbool "PHP(4,3) is Unsat" true (Sat.solve s = Sat.Unsat);
  check tbool "search had conflicts" true (Sat.conflicts s > 0);
  (* 3 pigeons into 3 holes is fine *)
  let s = Sat.create () in
  let v = Array.init 3 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 2 do
    Sat.add_clause s (List.init 3 (fun h -> Sat.pos v.(p).(h)))
  done;
  for h = 0 to 2 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Sat.add_clause s [ Sat.negl v.(p1).(h); Sat.negl v.(p2).(h) ]
      done
    done
  done;
  check tbool "PHP(3,3) is Sat" true (Sat.solve s = Sat.Sat)

let test_sat_assumptions_incremental () =
  let s = Sat.create () in
  let x = Sat.new_var s and y = Sat.new_var s in
  Sat.add_clause s [ Sat.pos x; Sat.pos y ];
  check tbool "sat under ~x" true
    (Sat.solve ~assumptions:[ Sat.negl x ] s = Sat.Sat);
  check tbool "~x assumption honoured" false (Sat.value s x);
  check tbool "y forced under ~x" true (Sat.value s y);
  check tbool "unsat under ~x ~y" true
    (Sat.solve ~assumptions:[ Sat.negl x; Sat.negl y ] s = Sat.Unsat);
  (* assumption UNSAT must not poison the solver *)
  check tbool "still ok" true (Sat.is_ok s);
  check tbool "sat without assumptions" true (Sat.solve s = Sat.Sat);
  (* clauses added between solve calls take effect *)
  Sat.add_clause s [ Sat.negl x ];
  check tbool "unsat under x after adding ~x" true
    (Sat.solve ~assumptions:[ Sat.pos x ] s = Sat.Unsat);
  check tbool "sat, x now false" true (Sat.solve s = Sat.Sat && not (Sat.value s x))

let test_sat_learning_persists () =
  (* an UNSAT core under assumptions leaves learned clauses behind;
     solving the same query again must be no harder (and still Unsat) *)
  let s = pigeonhole 3 in
  check tbool "first solve Unsat" true (Sat.solve s = Sat.Unsat);
  let c1 = Sat.conflicts s in
  check tbool "re-solve still Unsat" true (Sat.solve s = Sat.Unsat);
  let c2 = Sat.conflicts s - c1 in
  check tbool "level-0 Unsat is remembered without new search" true (c2 = 0)

let test_sat_conflict_limit () =
  let s = pigeonhole 6 in
  check tbool "tiny budget gives Undecided" true
    (Sat.solve ~conflict_limit:3 s = Sat.Undecided);
  check tbool "solver survives budget exhaustion" true (Sat.is_ok s);
  check tbool "full budget resolves Unsat" true (Sat.solve s = Sat.Unsat)

(* --- AIG ------------------------------------------------------------------- *)

let test_aig_folding () =
  let g = Aig.create () in
  let x = Aig.new_input g and y = Aig.new_input g in
  check tint "and(true, x) = x" x (Aig.mk_and g Aig.tru x);
  check tint "and(false, x) = false" Aig.fls (Aig.mk_and g Aig.fls x);
  check tint "and(x, x) = x" x (Aig.mk_and g x x);
  check tint "and(x, ~x) = false" Aig.fls (Aig.mk_and g x (Aig.neg x));
  check tint "or(x, true) = true" Aig.tru (Aig.mk_or g x Aig.tru);
  check tint "xor(x, x) = false" Aig.fls (Aig.mk_xor g x x);
  check tint "xor(x, false) = x" x (Aig.mk_xor g x Aig.fls);
  check tint "mux(c, a, a) = a" y (Aig.mk_mux g x y y);
  check tint "double negation" x (Aig.neg (Aig.neg x))

let test_aig_hash_consing () =
  let g = Aig.create () in
  let x = Aig.new_input g and y = Aig.new_input g in
  let a = Aig.mk_and g x y in
  let n = Aig.num_nodes g in
  check tint "and(x,y) structurally shared" a (Aig.mk_and g x y);
  check tint "and(y,x) commutes onto the same node" a (Aig.mk_and g y x);
  check tint "no node allocated for the repeats" n (Aig.num_nodes g)

let test_aig_evaluator () =
  let g = Aig.create () in
  let x = Aig.new_input g and y = Aig.new_input g in
  let f = Aig.mk_xor g x y in
  List.iter
    (fun (bx, by) ->
      let input n =
        if n = Aig.node_of x then bx
        else if n = Aig.node_of y then by
        else false
      in
      let ev = Aig.evaluator g input in
      check tbool
        (Printf.sprintf "xor %b %b" bx by)
        (bx <> by) (ev f);
      check tbool "true literal" true (ev Aig.tru);
      check tbool "false literal" false (ev Aig.fls))
    [ (false, false); (false, true); (true, false); (true, true) ]

(* --- bit-blast vs Value ---------------------------------------------------- *)

(* Feed a concrete value in through fresh AIG inputs (not constants), so
   the test exercises the gate-level adders/shifters/dividers rather
   than the constant folder. *)
let input_vec g ty v tbl =
  let s = Value.signedness_of ty in
  let w = Ast.bits_of_width (Value.width_of ty) in
  let vec = Blast.inputs g s w in
  let v = Value.wrap_ty ty v in
  for i = 0 to w - 1 do
    let l = vec.(i) in
    if Aig.is_input g l then
      Hashtbl.replace tbl (Aig.node_of l)
        (Int64.logand (Int64.shift_right_logical v i) 1L = 1L)
  done;
  vec

let blast_tys =
  Ast.
    [
      Tint (Signed, W8);
      Tint (Unsigned, W8);
      Tint (Signed, W32);
      Tint (Unsigned, W32);
      Tint (Signed, W64);
    ]

let blast_samples = [ -128L; -7L; -1L; 0L; 1L; 2L; 3L; 7L; 100L; 255L; 4096L ]

let test_blast_binop_vs_value () =
  let ops =
    Ast.
      [
        Add; Sub; Mul; Div; Mod; Band; Bor; Bxor; Shl; Shr; Lt; Le; Gt; Ge; Eq;
        Ne; Land; Lor;
      ]
  in
  List.iter
    (fun ty ->
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let wa = Value.wrap_ty ty a and wb = Value.wrap_ty ty b in
                  (* shift amounts beyond the word and zero divisors are
                     runtime errors in the concrete semantics *)
                  let skip =
                    match op with
                    | Ast.Div | Ast.Mod -> wb = 0L
                    | Ast.Shl | Ast.Shr -> wb < 0L || wb > 63L
                    | _ -> false
                  in
                  if not skip then begin
                    let expected = Value.binop op ty wa wb in
                    let g = Aig.create () in
                    let tbl = Hashtbl.create 64 in
                    let va = input_vec g ty a tbl and vb = input_vec g ty b tbl in
                    let out = Blast.binop g op ty va vb in
                    let ev =
                      Aig.evaluator g (fun n ->
                          Option.value ~default:false (Hashtbl.find_opt tbl n))
                    in
                    let got = Blast.eval_vec ev out in
                    if got <> expected then
                      Alcotest.failf "%s %Ld %Ld (%s): blast %Ld, value %Ld"
                        (Ast.show_binop op) wa wb (Front.Pretty.string_of_ty ty)
                        got expected
                  end)
                blast_samples)
            blast_samples)
        ops)
    blast_tys

let test_blast_unop_cast_vs_value () =
  List.iter
    (fun ty ->
      List.iter
        (fun a ->
          let wa = Value.wrap_ty ty a in
          let g = Aig.create () in
          let tbl = Hashtbl.create 64 in
          let va = input_vec g ty a tbl in
          let ev () =
            Aig.evaluator g (fun n ->
                Option.value ~default:false (Hashtbl.find_opt tbl n))
          in
          List.iter
            (fun op ->
              let got = Blast.eval_vec (ev ()) (Blast.unop g op ty va) in
              let expected = Value.unop op ty wa in
              if got <> expected then
                Alcotest.failf "%s %Ld (%s): blast %Ld, value %Ld"
                  (Ast.show_unop op) wa (Front.Pretty.string_of_ty ty) got
                  expected)
            Ast.[ Neg; Bnot; Lnot ];
          List.iter
            (fun to_ty ->
              let got =
                Blast.eval_vec (ev ()) (Blast.cast g ~from_ty:ty ~to_ty va)
              in
              let expected = Value.cast ~from_ty:ty ~to_ty wa in
              if got <> expected then
                Alcotest.failf "cast %Ld: %s -> %s: blast %Ld, value %Ld" wa
                  (Front.Pretty.string_of_ty ty)
                  (Front.Pretty.string_of_ty to_ty)
                  got expected)
            (Ast.Tbool :: blast_tys))
        blast_samples)
    blast_tys

(* --- model vs engine, cycle for cycle -------------------------------------- *)

(* Deterministic bit stream per (seed, AIG node): splitmix64 finalizer. *)
let hash_bool seed node =
  let x = Int64.add (Int64.mul (Int64.of_int node) 0x9E3779B97F4A7C15L) seed in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  let x = Int64.logxor x (Int64.shift_right_logical x 31) in
  Int64.logand x 1L = 1L

(* Extract the induced testbench from an evaluated unrolling, the same
   way Prove.eval_witness reads a solver model back. *)
let induced_feeds (model : Model.t) ev ~depth =
  List.map
    (fun s ->
      let vs = ref [] in
      for c = 0 to depth - 1 do
        let io = Model.cycle model c in
        match List.find_opt (fun (s', _, _) -> s' = s) io.Model.io_feeds with
        | Some (_, en, v) -> if ev en then vs := Blast.eval_vec ev v :: !vs
        | None -> ()
      done;
      (s, List.rev !vs))
    model.Model.cfg.Model.feeds

let induced_params (model : Model.t) ev =
  List.fold_left
    (fun acc (proc, origin, vec) ->
      let v = Blast.eval_vec ev vec in
      match List.assoc_opt proc acc with
      | Some bs -> (proc, bs @ [ (origin, v) ]) :: List.remove_assoc proc acc
      | None -> acc @ [ (proc, [ (origin, v) ]) ])
    [] model.Model.params

(* Unroll the symbolic model [depth] cycles, pick a random environment,
   and check that the engine — run on the very testbench the environment
   induces — fires exactly the taps the model predicts, at exactly the
   predicted cycles, up to the first predicted division crash. *)
let model_engine_equiv ~seed ~depth (prog : Ast.program) : bool =
  match
    let f = Verify.front_of prog in
    let cfg = Verify.model_config f in
    let model = Model.create cfg in
    for _ = 1 to depth do
      ignore (Model.step model)
    done;
    (f, cfg, model)
  with
  | exception Model.Unsupported _ -> false
  | f, cfg, model -> (
      match
        let ev = Aig.evaluator model.Model.g (hash_bool seed) in
        let horizon =
          let h = ref depth in
          for c = depth - 1 downto 0 do
            if ev (Model.crash_at model c) then h := c
          done;
          !h
        in
        let predicted =
          List.concat
            (List.init horizon (fun c ->
                 List.filter_map
                   (fun (id, l) -> if ev l then Some (id, c) else None)
                   (Model.cycle model c).Model.io_fires))
          |> List.sort_uniq compare
        in
        let feeds = induced_feeds model ev ~depth in
        let params = induced_params model ev in
        (ev, horizon, predicted, feeds, params)
      with
      | exception Model.Unsupported _ -> false
      | _ev, horizon, predicted, feeds, params ->
          let c = Driver.finish f in
          let conds =
            List.map
              (fun (ck : Core.Checker.t) ->
                ( ck.Core.Checker.spec.Core.Parallelize.info.Core.Assertion.id,
                  ck.Core.Checker.spec.Core.Parallelize.cond ))
              c.Driver.checkers
          in
          let observed = ref [] in
          let on_tap cycle tid values =
            if cycle < horizon then
              match List.assoc_opt tid conds with
              | Some cond ->
                  if not (Core.Assertion.holds cond values) then
                    observed := (tid, cycle) :: !observed
              | None -> ()
          in
          let options =
            {
              Driver.default_sim_options with
              Driver.feeds;
              drains = cfg.Model.drains;
              params;
              max_cycles = depth + 64;
            }
          in
          ignore (Driver.simulate ~options ~on_tap c);
          let observed = List.sort_uniq compare !observed in
          if observed <> predicted then
            Alcotest.failf
              "model/engine fire mismatch (seed %Ld, horizon %d): model {%s} \
               engine {%s}"
              seed horizon
              (String.concat "; "
                 (List.map (fun (i, cy) -> Printf.sprintf "#%d@%d" i cy) predicted))
              (String.concat "; "
                 (List.map (fun (i, cy) -> Printf.sprintf "#%d@%d" i cy) observed));
          true)

let test_model_engine_torture () =
  let depth = 6 in
  let covered = ref 0 in
  for i = 0 to 39 do
    let prog =
      Front.Typecheck.parse_and_check
        (Front.Pretty.program_to_string
           (Gen.generate ~seed:(Gen.program_seed ~run_seed:42L ~index:i) ~fuel:8))
    in
    (* two environments per program: all-zero-ish and a scrambled one *)
    List.iter
      (fun seed ->
        if model_engine_equiv ~seed ~depth prog then incr covered)
      [ 0L; Int64.of_int (1 + i) ]
  done;
  check tbool
    (Printf.sprintf "enough torture programs in the BMC fragment (%d)" !covered)
    true (!covered >= 20)

let test_model_engine_examples () =
  (* mine_demo under a hostile seed must show at least one model-level
     fire that the engine then reproduces (the equivalence check inside
     model_engine_equiv does the exact comparison) *)
  let prog = elab (read_file (example "examples/mine_demo.c")) in
  let ran = ref 0 in
  List.iter
    (fun seed -> if model_engine_equiv ~seed ~depth:8 prog then incr ran)
    [ 0L; 7L; 1234567L ];
  check tint "mine_demo is in the BMC fragment" 3 !ran

(* --- Absint cross-check ---------------------------------------------------- *)

(* Soundness, cross-verifier: an assertion the abstract interpreter
   proves can never fire must never be Violated by a replay-confirmed
   BMC counterexample — both over-approximate the same semantics.  Swept
   over the examples corpus and a band of torture programs. *)
let absint_bmc_agree ?(depth = 6) prog =
  let f = Verify.front_of prog in
  let absint = Analysis.Absint.analyze prog in
  List.iteri
    (fun i id ->
      let r, _ = Verify.check_target ~depth f ~absint id in
      match (List.nth_opt absint.Analysis.Absint.verdicts i, r.Verdict.pr_class) with
      | Some { Analysis.Absint.vclass = Analysis.Absint.Proved; _ },
        Verdict.Bviolated cycle ->
          Alcotest.failf
            "verifier divergence: Absint proved %s:%s but BMC violated it at \
             cycle %d (replay confirmed)"
            r.Verdict.pr_proc r.Verdict.pr_text cycle
      | _ -> ())
    (Verify.target_ids f)

let test_absint_cross_examples () =
  List.iter
    (fun file -> absint_bmc_agree (elab (read_file (example file))))
    [
      "examples/fir.c"; "examples/mine_demo.c"; "examples/campaign.c";
      "examples/prove_demo.c"; "examples/dct.c";
    ]

let test_absint_cross_torture () =
  for i = 0 to 14 do
    absint_bmc_agree
      (Front.Typecheck.parse_and_check
         (Front.Pretty.program_to_string
            (Gen.generate ~seed:(Gen.program_seed ~run_seed:9L ~index:i) ~fuel:8)))
  done

let test_oracle_bmc_leg () =
  (* the torture oracle with the BMC leg armed: clean generated programs
     must stay divergence-free (satellite of `inca fuzz --bmc-depth`) *)
  for i = 0 to 7 do
    let prog =
      Gen.generate ~seed:(Gen.program_seed ~run_seed:42L ~index:i) ~fuel:8
    in
    let o = Torture.Oracle.check ~bmc_depth:4 prog in
    check tbool
      (Printf.sprintf "program %d agrees with the BMC leg armed" i)
      true (Torture.Oracle.agrees o)
  done

(* --- end-to-end prove ------------------------------------------------------ *)

let test_prove_mine_demo_violated () =
  let prog = elab (read_file (example "examples/mine_demo.c")) in
  let rep, diags = Verify.prove ~depth:8 prog in
  let violated =
    List.filter
      (fun (r : Verdict.presult) ->
        match r.Verdict.pr_class with Verdict.Bviolated _ -> true | _ -> false)
      rep.Verdict.p_results
  in
  check tint "exactly one violated assertion" 1 (List.length violated);
  (match violated with
  | [ r ] ->
      check tbool "counterexample replayed within the unrolled depth" true
        (match r.Verdict.pr_class with
        | Verdict.Bviolated c -> c < 8
        | _ -> false)
  | _ -> ());
  check tbool "INCA-B001 emitted" true
    (List.exists (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code = "INCA-B001") diags);
  check tbool "no replay divergence" false
    (List.exists (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code = "INCA-B006") diags)

let test_prove_demo_induction () =
  let prog = elab (read_file (example "examples/prove_demo.c")) in
  (* Absint leaves the masked-nibble assertion Unknown... *)
  let absint = Analysis.Absint.analyze prog in
  check tbool "absint proves nothing here" true
    (List.for_all
       (fun (v : Analysis.Absint.verdict) ->
         v.Analysis.Absint.vclass <> Analysis.Absint.Proved)
       absint.Analysis.Absint.verdicts);
  (* ...but k-induction closes it *)
  let rep, diags = Verify.prove ~depth:8 ~induction:4 prog in
  let keys = Verify.induction_proved_keys rep in
  check tint "exactly one assertion proved by induction" 1 (List.length keys);
  check tbool "INCA-B002 emitted" true
    (List.exists (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code = "INCA-B002") diags);
  (* the proof pays: pruning the induction-proved checker saves area *)
  let base = Driver.compile ~strategy:Driver.parallelized prog in
  let pruned =
    Driver.compile ~strategy:Driver.parallelized ~induction_proved:keys prog
  in
  check tbool "ALUT dividend" true
    (pruned.Driver.area.Rtl.Area.aluts < base.Driver.area.Rtl.Area.aluts);
  check tbool "register dividend" true
    (pruned.Driver.area.Rtl.Area.registers < base.Driver.area.Rtl.Area.registers);
  check tint "accounting: one induction-pruned, zero absint-pruned" 1
    pruned.Driver.pruned.Driver.induction_pruned;
  check tint "accounting: absint side" 0 pruned.Driver.pruned.Driver.absint_pruned

let test_prove_without_induction_stays_bounded () =
  (* the same assertion without the induction step is only Bounded —
     the proof really comes from induction, not from the bounded search *)
  let prog = elab (read_file (example "examples/prove_demo.c")) in
  let rep, _ = Verify.prove ~depth:8 ~induction:0 prog in
  check tint "nothing proved without induction" 0
    (List.length (Verify.induction_proved_keys rep));
  let _, _, b, _ = Verdict.tally rep in
  check tint "both assertions bounded" 2 b

let test_prove_deterministic_across_jobs () =
  let prog = elab (read_file (example "examples/prove_demo.c")) in
  let seq, _ = Verify.prove ~depth:8 ~induction:4 prog in
  let pooled jobs =
    let f = Verify.front_of prog in
    let absint = Analysis.Absint.analyze prog in
    let results =
      List.map
        (fun (o : _ Exec.Pool.outcome) ->
          match o.Exec.Pool.value with
          | Ok r -> r
          | Error m -> Alcotest.failf "pool worker failed: %s" m)
        (Exec.Pool.map ~jobs
           (fun id -> fst (Verify.check_target ~depth:8 ~induction:4 f ~absint id))
           (Verify.target_ids f))
    in
    { Verdict.p_depth = 8; p_induction = 4; p_results = results }
  in
  let render r = Json.to_string (Verdict.json_of ~file:"prove_demo.c" r) in
  check tstr "1-domain pool matches sequential" (render seq) (render (pooled 1));
  check tstr "4-domain pool matches sequential" (render seq) (render (pooled 4))

let test_prove_fir_outside_fragment () =
  (* pipelined loops are outside the BMC fragment: Unknown + B005, and
     crucially not misreported as proved or violated *)
  let prog = elab (read_file (example "examples/fir.c")) in
  let rep, diags = Verify.prove ~depth:4 prog in
  let p, v, _, u = Verdict.tally rep in
  check tint "nothing proved" 0 p;
  check tint "nothing violated" 0 v;
  check tbool "assertions classified unknown" true (u > 0);
  check tbool "INCA-B005 emitted" true
    (List.exists (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code = "INCA-B005") diags)

let () =
  Alcotest.run "bmc"
    [
      ( "sat",
        [
          Alcotest.test_case "unit propagation" `Quick test_sat_unit_propagation;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "assumptions + incremental" `Quick
            test_sat_assumptions_incremental;
          Alcotest.test_case "learning persists" `Quick test_sat_learning_persists;
          Alcotest.test_case "conflict limit" `Quick test_sat_conflict_limit;
        ] );
      ( "aig",
        [
          Alcotest.test_case "constant folding" `Quick test_aig_folding;
          Alcotest.test_case "hash consing" `Quick test_aig_hash_consing;
          Alcotest.test_case "evaluator" `Quick test_aig_evaluator;
        ] );
      ( "blast",
        [
          Alcotest.test_case "binop vs Value" `Slow test_blast_binop_vs_value;
          Alcotest.test_case "unop/cast vs Value" `Quick
            test_blast_unop_cast_vs_value;
        ] );
      ( "model",
        [
          Alcotest.test_case "engine equivalence (torture)" `Slow
            test_model_engine_torture;
          Alcotest.test_case "engine equivalence (mine_demo)" `Quick
            test_model_engine_examples;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "absint agrees (examples)" `Slow
            test_absint_cross_examples;
          Alcotest.test_case "absint agrees (torture)" `Slow
            test_absint_cross_torture;
          Alcotest.test_case "oracle BMC leg" `Slow test_oracle_bmc_leg;
        ] );
      ( "prove",
        [
          Alcotest.test_case "mine_demo violated + replayed" `Quick
            test_prove_mine_demo_violated;
          Alcotest.test_case "prove_demo 1-induction" `Quick
            test_prove_demo_induction;
          Alcotest.test_case "bounded without induction" `Quick
            test_prove_without_induction_stays_bounded;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_prove_deterministic_across_jobs;
          Alcotest.test_case "fir outside fragment" `Quick
            test_prove_fir_outside_fragment;
        ] );
    ]
