(* Core library tests: assertion extraction, instrumentation,
   parallelization, replication, channel sharing, notification, the
   end-to-end driver — and the Table 3/4 latency/rate regressions. *)

open Front
module Ir = Mir.Ir
module Engine = Sim.Engine
module Driver = Core.Driver

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let elab = Typecheck.parse_and_check ~file:"app.c"

(* --- Extraction ------------------------------------------------------------ *)

let two_assert_src =
  {| stream int32 inp depth 8; stream int32 out depth 8;
     process hw alpha() {
       int32 x; x = stream_read(inp);
       assert(x > 0);
       stream_write(out, x);
     }
     process hw beta() {
       int32 y; y = stream_read(out);
       assert(y < 100);
     } |}

let test_extract () =
  let asserts = Core.Assertion.extract (elab two_assert_src) in
  check tint "two assertions" 2 (List.length asserts);
  let a = List.nth asserts 0 and b = List.nth asserts 1 in
  check tint "ids sequential" 1 (b.Core.Assertion.id - a.Core.Assertion.id);
  check tstr "proc of first" "alpha" a.Core.Assertion.aproc;
  check tstr "text of first" "x > 0" a.Core.Assertion.text

let test_message_format () =
  let asserts = Core.Assertion.extract (elab two_assert_src) in
  let a = List.hd asserts in
  check tstr "ANSI format" "app.c:4: alpha: Assertion `x > 0' failed."
    (Core.Assertion.message a)

let test_sw_procs_not_extracted () =
  let src = "process sw host() { assert(false); } process hw dev() { assert(true); }" in
  let asserts = Core.Assertion.extract (elab src) in
  check tint "hardware assertions only" 1 (List.length asserts)

(* --- eval_slots -------------------------------------------------------------- *)

let eval_slots_matches_interp =
  QCheck.Test.make ~count:200 ~name:"checker condition evaluation matches C semantics"
    QCheck.(triple int32 int32 (oneofl [ ">"; "<"; "=="; "!="; ">="; "<=" ]))
    (fun (a, b, op) ->
      let src =
        Printf.sprintf "process hw m() { int32 p; int32 q; p = (%ld); q = (%ld); assert(p %s q); }"
          a b op
      in
      let prog = elab src in
      let _, specs = Core.Parallelize.transform prog in
      let spec = List.hd specs in
      let holds =
        Core.Assertion.holds spec.Core.Parallelize.cond
          [| Int64.of_int32 a; Int64.of_int32 b |]
      in
      let expected =
        match op with
        | ">" -> a > b | "<" -> a < b | "==" -> a = b
        | "!=" -> a <> b | ">=" -> a >= b | _ -> a <= b
      in
      holds = expected)

(* --- Parallelize ------------------------------------------------------------- *)

let test_parallelize_slots_dedup () =
  let src = "process hw m() { int32 x; int32 y; x = 1; y = 2; assert(x + y > x * 2); }" in
  let _, specs = Core.Parallelize.transform (elab src) in
  let spec = List.hd specs in
  (* x appears twice but gets one slot; y one slot *)
  check tint "two slots" 2 (List.length spec.Core.Parallelize.slots)

let test_parallelize_replaces_assert_with_tap () =
  let prog', _ = Core.Parallelize.transform (elab two_assert_src) in
  let no_asserts =
    List.for_all
      (fun (p : Ast.proc) -> Ast.assertions_of p.Ast.body = [])
      prog'.Ast.procs
  in
  check tbool "asserts gone" true no_asserts;
  let taps = ref 0 in
  List.iter
    (fun (p : Ast.proc) ->
      Ast.iter_stmts
        (fun st -> match st.Ast.s with Ast.Tapstmt _ -> incr taps | _ -> ())
        p.Ast.body)
    prog'.Ast.procs;
  check tint "taps inserted" 2 !taps

let test_parallelize_array_leaf () =
  let src = "process hw m() { int32 a[4]; a[0] = 1; assert(a[0] > 0); }" in
  let _, specs = Core.Parallelize.transform (elab src) in
  let spec = List.hd specs in
  match (List.hd spec.Core.Parallelize.slots).Ast.e with
  | Ast.Index ("a", _) -> ()
  | _ -> Alcotest.fail "array read should be a slot"

(* --- Replicate ----------------------------------------------------------------- *)

let test_replicate_redirects_taps () =
  let src = "process hw m() { int32 a[4]; a[0] = 1; assert(a[0] > 0); }" in
  let prog', _ = Core.Parallelize.transform (elab src) in
  let p', mirrors = Core.Replicate.transform_proc (List.hd prog'.Ast.procs) in
  check tbool "mirror table" true (mirrors = [ ("a", "a__rep") ]);
  let redirected = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Tapstmt (_, args) ->
          List.iter
            (fun (e : Ast.expr) ->
              match e.Ast.e with Ast.Index ("a__rep", _) -> redirected := true | _ -> ())
            args
      | _ -> ())
    p'.Ast.body;
  check tbool "tap reads replica" true !redirected

let test_replicate_scalar_only_no_mirror () =
  let src = "process hw m() { int32 x; x = 1; assert(x > 0); }" in
  let prog', _ = Core.Parallelize.transform (elab src) in
  let _, mirrors = Core.Replicate.transform_proc (List.hd prog'.Ast.procs) in
  check tbool "no mirrors for scalars" true (mirrors = [])

(* --- Share ---------------------------------------------------------------------- *)

let mk_asserts n =
  List.init n (fun i ->
      {
        Core.Assertion.id = i;
        aproc = Printf.sprintf "p%d" (i mod 7);
        aloc = Loc.none;
        text = "x > 0";
        cond = Ast.mk_bool true;
      })

let test_share_per_proc () =
  let plan = Core.Share.plan `Per_proc (mk_asserts 14) in
  check tint "one stream per process" 7 (List.length plan.Core.Share.streams);
  (* each id decodes to itself *)
  List.iter
    (fun id ->
      let stream, word = Core.Share.route_of plan id in
      let dec = List.assoc stream plan.Core.Share.decode in
      check tbool "decode roundtrip" true (dec word = [ id ]))
    [ 0; 5; 13 ]

let test_share_shared_32 () =
  let plan = Core.Share.plan (`Shared 32) (mk_asserts 70) in
  check tint "70 assertions need 3 channels" 3 (List.length plan.Core.Share.streams);
  check tint "collectors match channels" 3 (List.length plan.Core.Share.collector_modules)

let share_decode_roundtrip =
  QCheck.Test.make ~count:100 ~name:"shared channel decode inverts routing"
    QCheck.(pair (int_range 1 120) (int_range 1 63))
    (fun (n, bits) ->
      let plan = Core.Share.plan (`Shared bits) (mk_asserts n) in
      List.for_all
        (fun id ->
          let stream, word = Core.Share.route_of plan id in
          let dec = List.assoc stream plan.Core.Share.decode in
          dec word = [ id ])
        (List.init n (fun i -> i)))

let test_share_stream_costs_one_m4k () =
  let plan = Core.Share.plan `Per_proc (mk_asserts 1) in
  let s = List.hd plan.Core.Share.streams in
  check tint "576 bits per failure stream" 576
    (Device.Stratix.stream_ram_bits
       ~width:(Ast.bits_of_width Ast.W32)
       ~depth:s.Ast.depth)

(* --- Instrument -------------------------------------------------------------------- *)

let test_instrument_shape () =
  let prog = elab two_assert_src in
  let plan = Core.Share.plan `Per_proc (Core.Assertion.extract prog) in
  let prog' = Core.Instrument.transform plan prog in
  (* asserts became if (!cond) stream_write *)
  List.iter
    (fun (p : Ast.proc) ->
      check tbool "no asserts left" true (Ast.assertions_of p.Ast.body = []))
    prog'.Ast.procs;
  check tint "failure streams added" 2
    (List.length prog'.Ast.streams - List.length prog.Ast.streams);
  (* the instrumented source is still a valid program *)
  let printed = Pretty.program_to_string prog' in
  let reparsed = elab printed in
  check tint "instrumented source re-elaborates" 2 (List.length reparsed.Ast.procs)

let test_strip_asserts () =
  let prog = elab two_assert_src in
  let stripped = List.map Core.Instrument.strip_asserts prog.Ast.procs in
  List.iter
    (fun (p : Ast.proc) -> check tbool "stripped" true (Ast.assertions_of p.Ast.body = []))
    stripped

(* --- Notify ------------------------------------------------------------------------ *)

let test_notify_c_source () =
  let prog = elab two_assert_src in
  let c = Driver.compile ~strategy:Driver.unoptimized prog in
  let src = c.Driver.notification_source in
  let contains needle =
    let n = String.length needle and m = String.length src in
    let rec go i = i + n <= m && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  check tbool "has case per assertion" true (contains "case 0:" && contains "case 1:");
  check tbool "prints ANSI message" true (contains "Assertion `x > 0' failed");
  check tbool "aborts" true (contains "abort();")

let test_notify_nabort_source () =
  let prog = elab two_assert_src in
  let c =
    Driver.compile ~strategy:{ Driver.unoptimized with Driver.nabort = true } prog
  in
  let src = c.Driver.notification_source in
  let contains needle =
    let n = String.length needle and m = String.length src in
    let rec go i = i + n <= m && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  check tbool "NABORT continues" true (contains "NABORT");
  check tbool "no abort" false (contains "abort();")

(* Under the Carte-C flavour (share = `Dma) the notification function
   polls the DMA mailbox instead of reading Impulse-C streams: one
   drain loop over head/tail, switching directly on assertion ids. *)
let test_notify_dma_source () =
  let prog = elab two_assert_src in
  let c = Driver.compile ~strategy:Driver.carte prog in
  let src = c.Driver.notification_source in
  let contains needle =
    let n = String.length needle and m = String.length src in
    let rec go i = i + n <= m && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  check tbool "mailbox signature" true
    (contains "assertion_notification(uint32_t *mailbox, int *head, int *tail)");
  check tbool "head/tail drain loop" true (contains "while (*head != *tail)");
  check tbool "ring-buffer pop" true (contains "mailbox[(*head)++ & 63]");
  check tbool "no stream reads" false (contains "co_stream_read");
  check tbool "case per assertion id" true (contains "case 0:" && contains "case 1:");
  check tbool "prints ANSI message" true (contains "Assertion `x > 0' failed")

(* The DMA drain loop is keyed by assertion id: any per-stream routing
   (failure words from the channel-sharing plan) must be ignored. *)
let test_notify_dma_ignores_route () =
  let prog = elab two_assert_src in
  let table =
    List.mapi (fun i a -> (i, a)) (Core.Assertion.extract prog)
  in
  let route = List.map (fun (id, _) -> (id, ("err0", Int64.of_int (100 + id)))) table in
  let src =
    Core.Notify.c_source ~dma:true ~route ~table ~streams:[ "err0" ] ~nabort:false
  in
  let contains needle =
    let n = String.length needle and m = String.length src in
    let rec go i = i + n <= m && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  check tbool "keyed by id, not routed word" true
    (contains "case 0:" && contains "case 1:");
  check tbool "routed words absent" false (contains "case 100:" || contains "case 101:")

(* --- Checker ------------------------------------------------------------------------ *)

let test_checker_synthesized () =
  let prog = elab two_assert_src in
  let c = Driver.compile ~strategy:Driver.parallelized prog in
  check tint "two checkers" 2 (List.length c.Driver.checkers);
  List.iter
    (fun (ck : Core.Checker.t) ->
      check tbool "valid checker fsmd" true (Hls.Fsmd.check ck.Core.Checker.fsmd = []);
      check tbool "positive latency" true (ck.Core.Checker.engine.Engine.latency >= 1))
    c.Driver.checkers

(* --- Driver end-to-end --------------------------------------------------------------- *)

let loop_src =
  {| stream int32 inp depth 8; stream int32 out depth 8;
     process hw main(int32 n) {
       int32 i;
       for (i = 0; i < n; i = i + 1) {
         int32 x; x = stream_read(inp);
         assert(x != 3);
         stream_write(out, x + 1);
       }
     } |}

let run_with strategy feeds =
  let c = Driver.compile ~strategy (elab loop_src) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("inp", feeds) ];
          drains = [ "out" ];
          params = [ ("main", [ ("n", Int64.of_int (List.length feeds)) ]) ];
        }
      c
  in
  (c, r)

let test_driver_all_strategies_catch () =
  List.iter
    (fun strategy ->
      let _, r = run_with strategy [ 1L; 2L; 3L; 4L ] in
      match r.Driver.engine.Engine.outcome with
      | Engine.Aborted msg ->
          check tbool "message mentions x != 3" true
            (String.length msg > 0 && r.Driver.failed_assertions = [ 0 ])
      | _ -> Alcotest.fail "assertion should abort")
    [ Driver.unoptimized; Driver.parallelized; Driver.optimized ]

let test_driver_passing_runs_clean () =
  List.iter
    (fun strategy ->
      let _, r = run_with strategy [ 1L; 2L; 4L; 5L ] in
      check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
      check tbool "no messages" true (r.Driver.messages = []))
    [ Driver.baseline; Driver.unoptimized; Driver.parallelized; Driver.optimized ]

let test_driver_invariants () =
  List.iter
    (fun strategy ->
      let c = Driver.compile ~strategy (elab loop_src) in
      check tbool "fsmd invariants hold" true (Driver.check_invariants c = []))
    [ Driver.baseline; Driver.unoptimized; Driver.parallelized; Driver.optimized ]

let test_driver_ndebug_strips_everything () =
  let c = Driver.compile ~strategy:Driver.baseline (elab loop_src) in
  check tint "no assertions" 0 (List.length c.Driver.asserts |> fun n -> if c.Driver.checkers = [] then 0 else n);
  check tbool "no failure streams" true (c.Driver.plan.Core.Share.streams = [])

let test_driver_area_ordering () =
  (* baseline <= optimized <= unoptimized channel overhead at scale *)
  let prog = elab (Apps.Loopback_src.source ~n:32 ()) in
  let a s = (Driver.compile ~strategy:s prog).Driver.area.Rtl.Area.aluts in
  let base = a Driver.baseline in
  let unopt = a Driver.unoptimized in
  let shared = a { Driver.unoptimized with Driver.share = `Shared 32 } in
  check tbool "assertions cost area" true (base < shared);
  check tbool "sharing saves area" true (shared < unopt)

let test_driver_vhdl_emitted () =
  let c = Driver.compile ~strategy:Driver.parallelized (elab loop_src) in
  let contains needle s =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check tbool "entity for the process" true (contains "entity main is" c.Driver.vhdl);
  check tbool "checker entity" true (contains "entity __chk0 is" c.Driver.vhdl)

let test_driver_compile_source () =
  let c = Driver.compile_source ~file:"inline.c" loop_src in
  check tint "one assertion" 1 (List.length c.Driver.asserts);
  check tbool "file recorded" true
    ((List.hd c.Driver.asserts).Core.Assertion.aloc.Loc.file = "inline.c")

let test_driver_unoptimized_nabort_collects_all () =
  let strategy = { Driver.unoptimized with Driver.nabort = true } in
  let c = Driver.compile ~strategy (elab loop_src) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("inp", [ 3L; 3L; 3L; 1L ]) ];
          drains = [ "out" ];
          params = [ ("main", [ ("n", 4L) ]) ];
        }
      c
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tint "three failures collected" 3 (List.length r.Driver.failed_assertions);
  check tbool "all data processed" true
    (List.assoc "out" r.Driver.engine.Engine.drained = [ 4L; 4L; 4L; 2L ])

let test_driver_shared_mode_messages () =
  let strategy = { Driver.optimized with Driver.share = `Shared 32 } in
  let c = Driver.compile ~strategy (elab loop_src) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("inp", [ 3L ]) ];
          drains = [ "out" ];
          params = [ ("main", [ ("n", 1L) ]) ];
        }
      c
  in
  match r.Driver.messages with
  | [ msg ] ->
      check tbool "decoded through the shared channel" true
        (msg = "app.c:6: main: Assertion `x != 3' failed.")
  | other -> Alcotest.fail (Printf.sprintf "expected one message, got %d" (List.length other))

let test_driver_mem_ports_strategy () =
  (* doubling the application-visible ports removes the consecutive-array
     overhead (Table 3's mechanism, inverted) *)
  let per strategy =
    let c = Driver.compile ~strategy (Typecheck.parse_and_check ~file:"kernel.c" Apps.Micro_src.array_consecutive) in
    let r =
      Driver.simulate
        ~options:
          {
            Driver.default_sim_options with
            Driver.feeds = [ ("input", Apps.Micro_src.feed_positive 64) ];
            drains = [ "output" ];
            params = [ ("kernel", [ ("n", 64L) ]) ];
          }
        c
    in
    r.Driver.engine.Engine.cycles
  in
  let single = per { Driver.unoptimized with Driver.mem_ports = 1 } in
  let dual = per { Driver.unoptimized with Driver.mem_ports = 2 } in
  check tbool "dual-port RAM is at least as fast" true (dual <= single)

(* --- Carte-C DMA transport (Section 4.3) ----------------------------------------------- *)

let test_carte_transport_catches () =
  let c = Driver.compile ~strategy:Driver.carte (elab loop_src) in
  check tint "one DMA mailbox channel" 1 (List.length c.Driver.plan.Core.Share.streams);
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("inp", [ 1L; 2L; 3L; 4L ]) ];
          drains = [ "out" ];
          params = [ ("main", [ ("n", 4L) ]) ];
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Aborted _ -> check tbool "decoded" true (r.Driver.failed_assertions = [ 0 ])
  | _ -> Alcotest.fail "DMA transport must still catch the failure"

let test_carte_polling_batches_notification () =
  (* the DMA mailbox is polled every 32 cycles: notification comes later
     than with the streaming bridge, the data is unaffected *)
  let cycles strategy =
    let c = Driver.compile ~strategy:{ strategy with Driver.nabort = true } (elab loop_src) in
    let r =
      Driver.simulate
        ~options:
          {
            Driver.default_sim_options with
            Driver.feeds = [ ("inp", [ 3L; 1L ]) ];
            drains = [ "out" ];
            params = [ ("main", [ ("n", 2L) ]) ];
          }
        c
    in
    check tbool "failure reported" true (r.Driver.failed_assertions = [ 0 ]);
    (r.Driver.engine.Engine.cycles, List.assoc "out" r.Driver.engine.Engine.drained)
  in
  let stream_cycles, stream_out = cycles Driver.parallelized in
  let dma_cycles, dma_out = cycles Driver.carte in
  check tbool "same data either way" true (stream_out = dma_out);
  check tbool "polling extends the run to the next poll" true (dma_cycles >= stream_cycles)

let test_carte_channel_count_constant () =
  (* one mailbox regardless of process count — the Section 4.3 argument
     that the techniques port to non-streaming HLS tools *)
  let prog = elab (Apps.Loopback_src.source ~n:24 ()) in
  let carte = Driver.compile ~strategy:Driver.carte prog in
  let per_proc = Driver.compile ~strategy:Driver.parallelized prog in
  check tint "one failure channel" 1 (List.length carte.Driver.plan.Core.Share.streams);
  check tint "vs one per process" 24 (List.length per_proc.Driver.plan.Core.Share.streams);
  check tbool "fewer total streams" true
    (carte.Driver.area.Rtl.Area.streams < per_proc.Driver.area.Rtl.Area.streams)

(* --- Tables 3 and 4 (regression against the paper) ----------------------------------- *)

let cycles src strategy =
  let n = 64 in
  let c = Driver.compile ~strategy (elab src) in
  let r =
    Driver.simulate
      ~options:
        {
          Driver.default_sim_options with
          Driver.feeds = [ ("input", Apps.Micro_src.feed_positive n) ];
          drains = [ "output" ];
          params = [ ("kernel", [ ("n", Int64.of_int n) ]) ];
        }
      c
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Finished -> (r.Driver.engine.Engine.cycles, r.Driver.engine.Engine.pipes)
  | _ -> Alcotest.fail "kernel did not finish"

let per_iter src strategy =
  let total, _ = cycles src strategy in
  total / 64

let t3_opt = { Driver.optimized with Driver.replicate = false; share = `Per_proc }
let t4_opt = { Driver.optimized with Driver.share = `Per_proc }

let test_table3_scalar () =
  let base = per_iter Apps.Micro_src.scalar_nonpipelined Driver.baseline in
  check tint "unoptimized +1" (base + 1) (per_iter Apps.Micro_src.scalar_nonpipelined Driver.unoptimized);
  check tint "optimized +0" base (per_iter Apps.Micro_src.scalar_nonpipelined t3_opt)

let test_table3_array_nonconsecutive () =
  let base = per_iter Apps.Micro_src.array_nonconsecutive Driver.baseline in
  check tint "unoptimized +1" (base + 1) (per_iter Apps.Micro_src.array_nonconsecutive Driver.unoptimized);
  check tint "optimized +0" base (per_iter Apps.Micro_src.array_nonconsecutive t3_opt)

let test_table3_array_consecutive () =
  let base = per_iter Apps.Micro_src.array_consecutive Driver.baseline in
  check tint "unoptimized +2" (base + 2) (per_iter Apps.Micro_src.array_consecutive Driver.unoptimized);
  check tint "optimized +1" (base + 1) (per_iter Apps.Micro_src.array_consecutive t3_opt)

let pipe_stats src strategy =
  let _, pipes = cycles src strategy in
  match List.filter (fun (p : Engine.pipe_stats) -> p.Engine.issues > 0) pipes with
  | [ p ] -> (p.Engine.latency_measured, p.Engine.ii_measured)
  | _ -> Alcotest.fail "expected one active pipe"

let test_table4_scalar () =
  let bl, br = pipe_stats Apps.Micro_src.scalar_pipelined Driver.baseline in
  check tint "baseline latency 2" 2 bl;
  check tbool "baseline rate 1" true (br < 1.05);
  let ul, ur = pipe_stats Apps.Micro_src.scalar_pipelined Driver.unoptimized in
  check tint "unoptimized latency 3" 3 ul;
  check tbool "unoptimized rate 2" true (ur > 1.95 && ur < 2.05);
  let ol, or_ = pipe_stats Apps.Micro_src.scalar_pipelined t4_opt in
  check tint "optimized latency 2" 2 ol;
  check tbool "optimized rate 1" true (or_ < 1.05)

let test_table4_array () =
  let bl, br = pipe_stats Apps.Micro_src.array_pipelined Driver.baseline in
  check tint "baseline latency 2" 2 bl;
  check tbool "baseline rate 2" true (br > 1.95 && br < 2.05);
  let ul, ur = pipe_stats Apps.Micro_src.array_pipelined Driver.unoptimized in
  check tint "unoptimized latency 4" 4 ul;
  check tbool "unoptimized rate 3" true (ur > 2.95 && ur < 3.05);
  let ol, or_ = pipe_stats Apps.Micro_src.array_pipelined t4_opt in
  check tbool "optimized latency back to baseline ballpark" true (ol <= 3);
  check tbool "replication restores rate 2" true (or_ > 1.95 && or_ < 2.05)

(* --- Faults end-to-end ------------------------------------------------------------------ *)

let fig3_src =
  {| stream int32 out depth 4;
     process hw check() {
       int64 c1; int64 c2; int32 addr;
       c1 = 4294967296; c2 = 4294967286; addr = 0;
       if (c2 > c1) { addr = addr - 10; }
       assert(addr >= 0);
       stream_write(out, addr);
     } |}

let test_fig3_software_passes_circuit_fails () =
  let faults =
    [ Faults.Fault.Narrow_compare
        { fproc = "check"; select = Faults.Fault.All; mask_bits = 5 } ]
  in
  let c = Driver.compile ~strategy:Driver.parallelized ~faults (elab fig3_src) in
  let sw = Driver.software_sim c in
  check tbool "software passes" true (Interp.ok sw);
  let hw = Driver.simulate c in
  match hw.Driver.engine.Engine.outcome with
  | Engine.Aborted _ -> check tint "assertion 0 failed" 1 (List.length hw.Driver.failed_assertions)
  | _ -> Alcotest.fail "circuit should catch the translation bug"

let test_fig3_without_fault_both_pass () =
  let c = Driver.compile ~strategy:Driver.parallelized (elab fig3_src) in
  check tbool "software passes" true (Interp.ok (Driver.software_sim c));
  check tbool "circuit passes" true
    ((Driver.simulate c).Driver.engine.Engine.outcome = Engine.Finished)

let () =
  Alcotest.run "core"
    [
      ( "extraction",
        [
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "ANSI message" `Quick test_message_format;
          Alcotest.test_case "hardware only" `Quick test_sw_procs_not_extracted;
          QCheck_alcotest.to_alcotest eval_slots_matches_interp;
        ] );
      ( "parallelize",
        [
          Alcotest.test_case "slot dedup" `Quick test_parallelize_slots_dedup;
          Alcotest.test_case "assert becomes tap" `Quick test_parallelize_replaces_assert_with_tap;
          Alcotest.test_case "array leaves" `Quick test_parallelize_array_leaf;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "tap redirection" `Quick test_replicate_redirects_taps;
          Alcotest.test_case "scalars need no mirror" `Quick test_replicate_scalar_only_no_mirror;
        ] );
      ( "share",
        [
          Alcotest.test_case "per-process channels" `Quick test_share_per_proc;
          Alcotest.test_case "32-way sharing" `Quick test_share_shared_32;
          Alcotest.test_case "stream costs one M4K" `Quick test_share_stream_costs_one_m4k;
          QCheck_alcotest.to_alcotest share_decode_roundtrip;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "if-conversion shape" `Quick test_instrument_shape;
          Alcotest.test_case "NDEBUG strip" `Quick test_strip_asserts;
        ] );
      ( "notify",
        [
          Alcotest.test_case "generated C" `Quick test_notify_c_source;
          Alcotest.test_case "NABORT variant" `Quick test_notify_nabort_source;
          Alcotest.test_case "DMA mailbox drain loop" `Quick test_notify_dma_source;
          Alcotest.test_case "DMA ignores stream routing" `Quick
            test_notify_dma_ignores_route;
        ] );
      ( "checker", [ Alcotest.test_case "synthesis" `Quick test_checker_synthesized ] );
      ( "driver",
        [
          Alcotest.test_case "all strategies catch" `Quick test_driver_all_strategies_catch;
          Alcotest.test_case "passing runs clean" `Quick test_driver_passing_runs_clean;
          Alcotest.test_case "invariants" `Quick test_driver_invariants;
          Alcotest.test_case "baseline strips" `Quick test_driver_ndebug_strips_everything;
          Alcotest.test_case "area ordering" `Quick test_driver_area_ordering;
          Alcotest.test_case "vhdl emitted" `Quick test_driver_vhdl_emitted;
          Alcotest.test_case "compile_source" `Quick test_driver_compile_source;
          Alcotest.test_case "unoptimized NABORT collects all" `Quick
            test_driver_unoptimized_nabort_collects_all;
          Alcotest.test_case "shared-mode messages" `Quick test_driver_shared_mode_messages;
          Alcotest.test_case "mem_ports strategy" `Quick test_driver_mem_ports_strategy;
        ] );
      ( "carte",
        [
          Alcotest.test_case "DMA notification source" `Quick (fun () ->
              let c = Driver.compile ~strategy:Driver.carte (elab loop_src) in
              let has sub s =
                let m = String.length sub and l = String.length s in
                let rec go i = i + m <= l && (String.sub s i m = sub || go (i + 1)) in
                go 0
              in
              check tbool "polls a mailbox" true (has "mailbox" c.Driver.notification_source);
              check tbool "no stream reads" false
                (has "co_stream_read" c.Driver.notification_source));
          Alcotest.test_case "DMA transport catches" `Quick test_carte_transport_catches;
          Alcotest.test_case "polling batches notification" `Quick
            test_carte_polling_batches_notification;
          Alcotest.test_case "constant channel count" `Quick test_carte_channel_count_constant;
        ] );
      ( "table3",
        [
          Alcotest.test_case "scalar 1/0" `Quick test_table3_scalar;
          Alcotest.test_case "array non-consecutive 1/0" `Quick test_table3_array_nonconsecutive;
          Alcotest.test_case "array consecutive 2/1" `Quick test_table3_array_consecutive;
        ] );
      ( "table4",
        [
          Alcotest.test_case "scalar (1,1)->(0,0)" `Quick test_table4_scalar;
          Alcotest.test_case "array (2,1)->(<=1,0)" `Quick test_table4_array;
        ] );
      ( "faults",
        [
          Alcotest.test_case "figure 3 divergence" `Quick test_fig3_software_passes_circuit_fails;
          Alcotest.test_case "no fault, both pass" `Quick test_fig3_without_fault_both_pass;
        ] );
    ]
