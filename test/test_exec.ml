(* Executor tests: the work-stealing pool (job order, crash isolation,
   retry accounting, serial fallback), the content-hash compile cache
   (physical sharing, per-strategy keys, hit/miss counters), and the
   end-to-end determinism contract — a campaign swept on 4 domains must
   render byte-identically to the same sweep on 1. *)

open Front
module Driver = Core.Driver
module Pool = Exec.Pool
module Cache = Exec.Cache

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let elab = Typecheck.parse_and_check ~file:"test.c"

(* --- pool ---------------------------------------------------------------- *)

let test_pool_drains_all_jobs_despite_crashes () =
  (* every 3rd job always raises; the pool must still deliver every
     outcome, in job order, with the failures isolated as [Error] *)
  let n = 16 in
  let fns =
    Array.init n (fun i () ->
        if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i) else i * 10)
  in
  let out = Pool.run ~jobs:4 ~retries:1 fns in
  check tint "one outcome per job" n (Array.length out);
  Array.iteri
    (fun i (o : int Pool.outcome) ->
      if i mod 3 = 0 then begin
        (match o.Pool.value with
        | Error msg ->
            check tbool (Printf.sprintf "job %d error names itself" i) true
              (let sub = Printf.sprintf "boom %d" i in
               let ls = String.length sub and lm = String.length msg in
               let rec go j = j + ls <= lm && (String.sub msg j ls = sub || go (j + 1)) in
               go 0)
        | Ok _ -> Alcotest.failf "job %d should have failed" i);
        check tint (Printf.sprintf "job %d retried once" i) 2 o.Pool.attempts
      end
      else
        match o.Pool.value with
        | Ok v ->
            check tint (Printf.sprintf "job %d value in order" i) (i * 10) v;
            check tint (Printf.sprintf "job %d ran once" i) 1 o.Pool.attempts
        | Error m -> Alcotest.failf "job %d unexpectedly failed: %s" i m)
    out

let test_pool_retry_recovers_transient_crash () =
  (* jobs that crash on their first attempt and succeed on the second:
     the retry must recover them and the accounting must show it *)
  let n = 8 in
  let tries = Array.init n (fun _ -> Atomic.make 0) in
  let fns =
    Array.init n (fun i () ->
        if Atomic.fetch_and_add tries.(i) 1 = 0 then failwith "transient" else i)
  in
  let out = Pool.run ~jobs:4 ~retries:1 fns in
  Array.iteri
    (fun i (o : int Pool.outcome) ->
      (match o.Pool.value with
      | Ok v -> check tint (Printf.sprintf "job %d recovered" i) i v
      | Error m -> Alcotest.failf "job %d not recovered: %s" i m);
      check tint (Printf.sprintf "job %d took two attempts" i) 2 o.Pool.attempts)
    out

let test_pool_serial_matches_parallel () =
  let fns = Array.init 32 (fun i () -> i * i) in
  let unwrap (o : int Pool.outcome) =
    match o.Pool.value with Ok v -> v | Error m -> Alcotest.failf "job failed: %s" m
  in
  let serial = Array.map unwrap (Pool.run ~jobs:1 fns) in
  let par = Array.map unwrap (Pool.run ~jobs:4 fns) in
  check (Alcotest.array tint) "serial = parallel, in job order" serial par

(* --- cache --------------------------------------------------------------- *)

let cache_source =
  {|
stream int32 data_in depth 16;
stream int32 data_out depth 16;

process hw worker(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(data_in);
    assert(x < 1000);
    stream_write(data_out, x + 1);
  }
}
|}

let test_cache_returns_shared_front () =
  let prog = elab cache_source in
  Cache.reset ();
  let a = Cache.front ~strategy:Driver.optimized prog in
  let b = Cache.front ~strategy:Driver.optimized prog in
  check tbool "same (program, strategy) shares one front" true (a == b);
  let s = Cache.stats () in
  check tint "one miss" 1 s.Cache.misses;
  check tint "one hit" 1 s.Cache.hits

let test_cache_distinct_fronts_per_strategy () =
  let prog = elab cache_source in
  Cache.reset ();
  let fronts =
    List.map (fun (_, st) -> Cache.front ~strategy:st prog) Driver.all_strategies
  in
  (* every strategy gets its own slot: distinct keys, no cross-strategy
     physical sharing, and a second lookup hits every slot *)
  let keys = List.map (fun (_, st) -> Cache.key ~strategy:st prog) Driver.all_strategies in
  check tint "one key per strategy"
    (List.length Driver.all_strategies)
    (List.length (List.sort_uniq compare keys));
  List.iteri
    (fun i fi ->
      List.iteri
        (fun j fj ->
          if i < j then
            check tbool (Printf.sprintf "fronts %d and %d distinct" i j) false (fi == fj))
        fronts)
    fronts;
  let s = Cache.stats () in
  check tint "all first lookups miss" (List.length Driver.all_strategies) s.Cache.misses;
  List.iter
    (fun (_, st) -> ignore (Cache.front ~strategy:st prog))
    Driver.all_strategies;
  let s = Cache.stats () in
  check tint "all second lookups hit" (List.length Driver.all_strategies) s.Cache.hits

let test_cache_compile_equals_driver_compile () =
  let prog = elab cache_source in
  Cache.reset ();
  let direct = Driver.compile ~strategy:Driver.parallelized prog in
  let cached = Cache.compile ~strategy:Driver.parallelized prog in
  check tstr "identical VHDL through the cache" direct.Driver.vhdl cached.Driver.vhdl;
  check tint "identical ALUTs" direct.Driver.area.Rtl.Area.aluts
    cached.Driver.area.Rtl.Area.aluts

(* --- disk tier ----------------------------------------------------------- *)

let with_disk_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "inca-cache-test-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Cache.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Cache.clear_disk ();
      (try Sys.rmdir dir with _ -> ());
      Cache.set_dir None;
      Cache.reset_memory ())
    (fun () -> f dir)

let test_disk_cache_warm_hit_across_processes () =
  (* entries are keyed by the producing executable's digest; dropping
     the in-memory tier is exactly what a new process of this binary
     sees, so a second "process" must warm-start from disk *)
  with_disk_cache (fun _dir ->
      let prog = elab cache_source in
      Cache.reset_memory ();
      ignore (Cache.front ~strategy:Driver.optimized prog);
      let s = Cache.stats () in
      check tint "cold run misses the disk too" 1 s.Cache.disk_misses;
      (match Cache.disk_stats () with
      | Some d -> check tbool "entry persisted" true (d.Cache.entries >= 1)
      | None -> Alcotest.fail "disk tier should be enabled");
      Cache.reset_memory ();
      ignore (Cache.front ~strategy:Driver.optimized prog);
      let s = Cache.stats () in
      check tint "warm run loads from disk" 1 s.Cache.disk_hits;
      check tint "no disk miss on the warm run" 0 s.Cache.disk_misses)

let test_disk_cache_blob_roundtrip () =
  with_disk_cache (fun _dir ->
      Cache.reset_memory ();
      Cache.store_blob ~kind:"test" ~key:"k1" [ 1; 2; 3 ];
      check tbool "blob round-trips" true
        (Cache.load_blob ~kind:"test" ~key:"k1" = Some [ 1; 2; 3 ]);
      check tbool "absent blob is a miss, not an error" true
        (Cache.load_blob ~kind:"test" ~key:"absent" = (None : int list option)))

let test_disk_cache_corruption_is_a_miss () =
  with_disk_cache (fun dir ->
      Cache.reset_memory ();
      Cache.store_blob ~kind:"test" ~key:"victim" "payload";
      (* truncate the entry mid-header *)
      let path =
        match Sys.readdir dir |> Array.to_list with
        | [ one ] -> Filename.concat dir one
        | files ->
            List.find
              (fun f -> Filename.check_suffix f ".bin")
              (List.map (Filename.concat dir) files)
      in
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
      output_string oc "INCA";
      close_out oc;
      check tbool "truncated entry reads as a miss" true
        (Cache.load_blob ~kind:"test" ~key:"victim" = (None : string option));
      (* overwrite with garbage of plausible length *)
      let oc = open_out_bin path in
      output_string oc (String.make 256 '\xff');
      close_out oc;
      check tbool "garbage entry reads as a miss" true
        (Cache.load_blob ~kind:"test" ~key:"victim" = (None : string option)))

let test_disk_cache_gc_and_clear () =
  with_disk_cache (fun _dir ->
      Cache.reset_memory ();
      for i = 1 to 8 do
        Cache.store_blob ~kind:"test"
          ~key:(Printf.sprintf "k%d" i)
          (String.make 1024 'x')
      done;
      let before =
        match Cache.disk_stats () with Some d -> d | None -> Alcotest.fail "enabled"
      in
      check tint "eight entries" 8 before.Cache.entries;
      let removed = Cache.gc ~max_bytes:(before.Cache.bytes / 2) in
      check tbool "gc evicted something" true (removed > 0);
      let after =
        match Cache.disk_stats () with Some d -> d | None -> Alcotest.fail "enabled"
      in
      check tbool "gc respects the byte bound" true
        (after.Cache.bytes <= before.Cache.bytes / 2);
      Cache.clear_disk ();
      match Cache.disk_stats () with
      | Some d -> check tint "clear empties the store" 0 d.Cache.entries
      | None -> Alcotest.fail "enabled")

(* --- end-to-end determinism ---------------------------------------------- *)

(* dune runtest runs tests from the test dir; dune exec from the root —
   probe both prefixes for the shared example sources *)
let example path =
  List.find Sys.file_exists
    [ Filename.concat ".." path; path; Filename.concat "../.." path ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_campaign_parallel_byte_identical () =
  (* the acceptance contract: examples/campaign.c swept on 4 domains
     renders byte-identically (text and JSON) to the serial sweep *)
  let src = read_file (example "examples/campaign.c") in
  let prog = Typecheck.parse_and_check ~file:"campaign.c" src in
  let options = Mine.Trace.auto_options prog in
  let workloads = [ { Campaign.wname = "campaign"; program = prog; options } ] in
  let sweep jobs =
    let config =
      { Campaign.default_config with Campaign.max_mutants = Some 6; jobs = Some jobs }
    in
    let r = Campaign.run ~config workloads in
    (Campaign.render r, Json.to_string (Campaign.json_of r))
  in
  let ser_txt, ser_json = sweep 1 in
  let par_txt, par_json = sweep 4 in
  check tstr "text report byte-identical" ser_txt par_txt;
  check tstr "json report byte-identical" ser_json par_json

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "drains all jobs despite crashes" `Quick
            test_pool_drains_all_jobs_despite_crashes;
          Alcotest.test_case "retry recovers transient crash" `Quick
            test_pool_retry_recovers_transient_crash;
          Alcotest.test_case "serial matches parallel" `Quick
            test_pool_serial_matches_parallel;
        ] );
      ( "cache",
        [
          Alcotest.test_case "shared front per key" `Quick test_cache_returns_shared_front;
          Alcotest.test_case "distinct fronts per strategy" `Quick
            test_cache_distinct_fronts_per_strategy;
          Alcotest.test_case "compile equals Driver.compile" `Quick
            test_cache_compile_equals_driver_compile;
        ] );
      ( "disk",
        [
          Alcotest.test_case "warm hit across processes" `Quick
            test_disk_cache_warm_hit_across_processes;
          Alcotest.test_case "blob round-trip" `Quick test_disk_cache_blob_roundtrip;
          Alcotest.test_case "corruption is a miss" `Quick
            test_disk_cache_corruption_is_a_miss;
          Alcotest.test_case "gc and clear" `Quick test_disk_cache_gc_and_clear;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign --jobs 4 = --jobs 1" `Quick
            test_campaign_parallel_byte_identical;
        ] );
    ]
