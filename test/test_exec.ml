(* Executor tests: the work-stealing pool (job order, crash isolation,
   retry accounting, serial fallback), the content-hash compile cache
   (physical sharing, per-strategy keys, hit/miss counters), and the
   end-to-end determinism contract — a campaign swept on 4 domains must
   render byte-identically to the same sweep on 1. *)

open Front
module Driver = Core.Driver
module Pool = Exec.Pool
module Cache = Exec.Cache

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let elab = Typecheck.parse_and_check ~file:"test.c"

(* --- pool ---------------------------------------------------------------- *)

let test_pool_drains_all_jobs_despite_crashes () =
  (* every 3rd job always raises; the pool must still deliver every
     outcome, in job order, with the failures isolated as [Error] *)
  let n = 16 in
  let fns =
    Array.init n (fun i () ->
        if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i) else i * 10)
  in
  let out = Pool.run ~jobs:4 ~retries:1 fns in
  check tint "one outcome per job" n (Array.length out);
  Array.iteri
    (fun i (o : int Pool.outcome) ->
      if i mod 3 = 0 then begin
        (match o.Pool.value with
        | Error msg ->
            check tbool (Printf.sprintf "job %d error names itself" i) true
              (let sub = Printf.sprintf "boom %d" i in
               let ls = String.length sub and lm = String.length msg in
               let rec go j = j + ls <= lm && (String.sub msg j ls = sub || go (j + 1)) in
               go 0)
        | Ok _ -> Alcotest.failf "job %d should have failed" i);
        check tint (Printf.sprintf "job %d retried once" i) 2 o.Pool.attempts
      end
      else
        match o.Pool.value with
        | Ok v ->
            check tint (Printf.sprintf "job %d value in order" i) (i * 10) v;
            check tint (Printf.sprintf "job %d ran once" i) 1 o.Pool.attempts
        | Error m -> Alcotest.failf "job %d unexpectedly failed: %s" i m)
    out

let test_pool_retry_recovers_transient_crash () =
  (* jobs that crash on their first attempt and succeed on the second:
     the retry must recover them and the accounting must show it *)
  let n = 8 in
  let tries = Array.init n (fun _ -> Atomic.make 0) in
  let fns =
    Array.init n (fun i () ->
        if Atomic.fetch_and_add tries.(i) 1 = 0 then failwith "transient" else i)
  in
  let out = Pool.run ~jobs:4 ~retries:1 fns in
  Array.iteri
    (fun i (o : int Pool.outcome) ->
      (match o.Pool.value with
      | Ok v -> check tint (Printf.sprintf "job %d recovered" i) i v
      | Error m -> Alcotest.failf "job %d not recovered: %s" i m);
      check tint (Printf.sprintf "job %d took two attempts" i) 2 o.Pool.attempts)
    out

let test_pool_serial_matches_parallel () =
  let fns = Array.init 32 (fun i () -> i * i) in
  let unwrap (o : int Pool.outcome) =
    match o.Pool.value with Ok v -> v | Error m -> Alcotest.failf "job failed: %s" m
  in
  let serial = Array.map unwrap (Pool.run ~jobs:1 fns) in
  let par = Array.map unwrap (Pool.run ~jobs:4 fns) in
  check (Alcotest.array tint) "serial = parallel, in job order" serial par

(* --- cache --------------------------------------------------------------- *)

let cache_source =
  {|
stream int32 data_in depth 16;
stream int32 data_out depth 16;

process hw worker(int32 n) {
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(data_in);
    assert(x < 1000);
    stream_write(data_out, x + 1);
  }
}
|}

let test_cache_returns_shared_front () =
  let prog = elab cache_source in
  Cache.reset ();
  let a = Cache.front ~strategy:Driver.optimized prog in
  let b = Cache.front ~strategy:Driver.optimized prog in
  check tbool "same (program, strategy) shares one front" true (a == b);
  let s = Cache.stats () in
  check tint "one miss" 1 s.Cache.misses;
  check tint "one hit" 1 s.Cache.hits

let test_cache_distinct_fronts_per_strategy () =
  let prog = elab cache_source in
  Cache.reset ();
  let fronts =
    List.map (fun (_, st) -> Cache.front ~strategy:st prog) Driver.all_strategies
  in
  (* every strategy gets its own slot: distinct keys, no cross-strategy
     physical sharing, and a second lookup hits every slot *)
  let keys = List.map (fun (_, st) -> Cache.key ~strategy:st prog) Driver.all_strategies in
  check tint "one key per strategy"
    (List.length Driver.all_strategies)
    (List.length (List.sort_uniq compare keys));
  List.iteri
    (fun i fi ->
      List.iteri
        (fun j fj ->
          if i < j then
            check tbool (Printf.sprintf "fronts %d and %d distinct" i j) false (fi == fj))
        fronts)
    fronts;
  let s = Cache.stats () in
  check tint "all first lookups miss" (List.length Driver.all_strategies) s.Cache.misses;
  List.iter
    (fun (_, st) -> ignore (Cache.front ~strategy:st prog))
    Driver.all_strategies;
  let s = Cache.stats () in
  check tint "all second lookups hit" (List.length Driver.all_strategies) s.Cache.hits

let test_cache_compile_equals_driver_compile () =
  let prog = elab cache_source in
  Cache.reset ();
  let direct = Driver.compile ~strategy:Driver.parallelized prog in
  let cached = Cache.compile ~strategy:Driver.parallelized prog in
  check tstr "identical VHDL through the cache" direct.Driver.vhdl cached.Driver.vhdl;
  check tint "identical ALUTs" direct.Driver.area.Rtl.Area.aluts
    cached.Driver.area.Rtl.Area.aluts

(* --- end-to-end determinism ---------------------------------------------- *)

(* dune runtest runs tests from the test dir; dune exec from the root —
   probe both prefixes for the shared example sources *)
let example path =
  List.find Sys.file_exists
    [ Filename.concat ".." path; path; Filename.concat "../.." path ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_campaign_parallel_byte_identical () =
  (* the acceptance contract: examples/campaign.c swept on 4 domains
     renders byte-identically (text and JSON) to the serial sweep *)
  let src = read_file (example "examples/campaign.c") in
  let prog = Typecheck.parse_and_check ~file:"campaign.c" src in
  let options = Mine.Trace.auto_options prog in
  let workloads = [ { Campaign.wname = "campaign"; program = prog; options } ] in
  let sweep jobs =
    let config =
      { Campaign.default_config with Campaign.max_mutants = Some 6; jobs = Some jobs }
    in
    let r = Campaign.run ~config workloads in
    (Campaign.render r, Campaign.render_json r)
  in
  let ser_txt, ser_json = sweep 1 in
  let par_txt, par_json = sweep 4 in
  check tstr "text report byte-identical" ser_txt par_txt;
  check tstr "json report byte-identical" ser_json par_json

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "drains all jobs despite crashes" `Quick
            test_pool_drains_all_jobs_despite_crashes;
          Alcotest.test_case "retry recovers transient crash" `Quick
            test_pool_retry_recovers_transient_crash;
          Alcotest.test_case "serial matches parallel" `Quick
            test_pool_serial_matches_parallel;
        ] );
      ( "cache",
        [
          Alcotest.test_case "shared front per key" `Quick test_cache_returns_shared_front;
          Alcotest.test_case "distinct fronts per strategy" `Quick
            test_cache_distinct_fronts_per_strategy;
          Alcotest.test_case "compile equals Driver.compile" `Quick
            test_cache_compile_equals_driver_compile;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign --jobs 4 = --jobs 1" `Quick
            test_campaign_parallel_byte_identical;
        ] );
    ]
