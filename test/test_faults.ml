(* Fault-injection tests: selector semantics of Fault.apply, each fault
   kind round-tripped through the cycle-accurate simulator, the
   live-lock watchdog, the campaign engine, and the per-stream routing
   of the generated notification function. *)

open Front
module Ir = Mir.Ir
module Engine = Sim.Engine
module Driver = Core.Driver
module Fault = Faults.Fault

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

let has_sub ~sub s =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A kernel with two stores and two stream writes, so the Nth selector
   has distinguishable sites to pick between. *)
let two_site_source =
  {|
stream int32 data_in depth 16;
stream int32 data_out depth 16;

process hw worker(int32 n) {
  int32 buf[4];
  int32 i;
  buf[0] = 11;
  buf[1] = 22;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(data_in);
    stream_write(data_out, x + buf[0]);
    stream_write(data_out, x + buf[1]);
  }
}
|}

let run ?(faults = []) ?(strategy = Driver.baseline) ?(watchdog = None)
    ?(max_cycles = 20_000) ~feeds ~drains ~params source =
  let prog = elab source in
  let c = Driver.compile ~strategy ~faults prog in
  Driver.simulate
    ~options:
      {
        Driver.default_sim_options with
        Driver.feeds;
        drains;
        params;
        max_cycles;
        watchdog;
      }
    c

let worker_opts =
  ( [ ("data_in", [ 1L; 2L; 3L ]) ],
    [ "data_out" ],
    [ ("worker", [ ("n", 3L) ]) ] )

let run_worker ?faults ?watchdog () =
  let feeds, drains, params = worker_opts in
  run ?faults ?watchdog ~feeds ~drains ~params two_site_source

let drained r = List.assoc "data_out" r.Driver.engine.Engine.drained

(* --- selector semantics ------------------------------------------------------- *)

let test_selector_all_hits_every_site () =
  (* dropping ALL writes to data_out leaves nothing to drain *)
  let r =
    run_worker
      ~faults:
        [ Fault.Drop_stream_write
            { fproc = "worker"; stream = "data_out"; select = Fault.All } ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tint "no outputs at all" 0 (List.length (drained r))

let test_selector_nth_hits_one_site () =
  (* dropping only write #1 halves the outputs; write #0 still flows *)
  let r =
    run_worker
      ~faults:
        [ Fault.Drop_stream_write
            { fproc = "worker"; stream = "data_out"; select = Fault.Nth 1 } ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "only the buf[0] writes survive" true
    (drained r = [ 12L; 13L; 14L ])

let test_selector_nth_out_of_range_is_noop () =
  let clean = run_worker () in
  let r =
    run_worker
      ~faults:
        [
          Fault.Drop_stream_write
            { fproc = "worker"; stream = "data_out"; select = Fault.Nth 99 };
          Fault.Read_for_write { fproc = "worker"; select = Fault.Nth 99 };
          Fault.Narrow_compare { fproc = "worker"; select = Fault.Nth 99; mask_bits = 5 };
          Fault.Loop_bound_off_by_one
            { fproc = "worker"; select = Fault.Nth 99; delta = 1L };
          Fault.Stuck_stream_bit
            { fproc = "worker"; stream = "data_out"; select = Fault.Nth 99; bit = 3;
              stuck_to = true };
        ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "output identical to the clean run" true (drained r = drained clean)

let test_apply_other_procs_untouched () =
  let r =
    run_worker
      ~faults:
        [ Fault.Drop_stream_write
            { fproc = "not_worker"; stream = "data_out"; select = Fault.All } ]
      ()
  in
  check tbool "wrong proc name is a no-op" true (drained r = drained (run_worker ()))

(* --- new fault kinds round-trip through the simulator ------------------------- *)

let test_stuck_bit_sets_bit_in_output () =
  let r =
    run_worker
      ~faults:
        [ Fault.Stuck_stream_bit
            { fproc = "worker"; stream = "data_out"; select = Fault.All; bit = 7;
              stuck_to = true } ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "every drained value has bit 7 set" true
    (List.for_all (fun v -> Int64.logand v 128L = 128L) (drained r));
  check tbool "values differ from clean run" true (drained r <> drained (run_worker ()))

let test_stuck_bit_clears_bit_in_output () =
  let r =
    run_worker
      ~faults:
        [ Fault.Stuck_stream_bit
            { fproc = "worker"; stream = "data_out"; select = Fault.All; bit = 2;
              stuck_to = false } ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "every drained value has bit 2 clear" true
    (List.for_all (fun v -> Int64.logand v 4L = 0L) (drained r))

let test_drop_write_advances_without_pushing () =
  (* the dropped write must not stall the FSM: the loop still runs to
     completion and the process halts *)
  let r =
    run_worker
      ~faults:
        [ Fault.Drop_stream_write
            { fproc = "worker"; stream = "data_out"; select = Fault.All } ]
      ()
  in
  check tbool "process halts despite dropped writes" true
    (r.Driver.engine.Engine.outcome = Engine.Finished)

let test_loop_bound_plus_one_over_reads () =
  (* one extra iteration reads a 4th value from a 3-element feed: the
     process blocks on the empty input and the hang detector fires *)
  let r =
    run_worker
      ~faults:
        [ Fault.Loop_bound_off_by_one
            { fproc = "worker"; select = Fault.Nth 0; delta = 1L } ]
      ()
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Hang blocked ->
      check tbool "worker named" true (List.exists (fun (p, _) -> p = "worker") blocked)
  | o ->
      Alcotest.failf "expected hang, got %s"
        (match o with
        | Engine.Finished -> "finished"
        | Engine.Aborted m -> "aborted " ^ m
        | Engine.Livelock _ -> "livelock"
        | Engine.Out_of_cycles -> "out of cycles"
        | _ -> "other")

let test_loop_bound_minus_one_truncates () =
  let r =
    run_worker
      ~faults:
        [ Fault.Loop_bound_off_by_one
            { fproc = "worker"; select = Fault.Nth 0; delta = -1L } ]
      ()
  in
  check tbool "finished" true (r.Driver.engine.Engine.outcome = Engine.Finished);
  check tint "one iteration (two writes) missing" 4 (List.length (drained r))

let test_faulted_software_sim_still_clean () =
  (* the software path interprets the source, so the fault is invisible
     there — the paper's headline scenario *)
  let prog = elab two_site_source in
  let faults =
    [ Fault.Stuck_stream_bit
        { fproc = "worker"; stream = "data_out"; select = Fault.All; bit = 7;
          stuck_to = true } ]
  in
  let c = Driver.compile ~strategy:Driver.baseline ~faults prog in
  let feeds, drains, params = worker_opts in
  let sw =
    Driver.software_sim
      ~options:{ Driver.default_sim_options with Driver.feeds; drains; params }
      c
  in
  check tbool "software simulation completes" true (sw.Interp.outcome = Interp.Completed);
  check tbool "software output is the clean output" true
    (List.assoc "data_out" sw.Interp.drained = drained (run_worker ()))

(* --- site enumeration --------------------------------------------------------- *)

let test_sites_cover_all_kinds () =
  let prog =
    elab
      {|
stream int32 s_in depth 16;
stream int32 s_out depth 16;

process hw kern(int32 n) {
  int32 buf[4];
  int32 i;
  int64 acc;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(s_in);
    buf[i % 4] = x;
    acc = acc + x;
    if (acc > 1000000) {
      acc = 0;
    }
    stream_write(s_out, buf[i % 4]);
  }
}
|}
  in
  let c = Driver.compile ~strategy:Driver.baseline prog in
  let sites = Fault.sites c.Driver.ir in
  let count k = List.length (List.filter (fun f -> Fault.kind_name f = k) sites) in
  check tbool "narrow-compare sites" true (count "narrow-compare" >= 1);
  check tbool "read-for-write sites" true (count "read-for-write" >= 1);
  check tint "stuck-bit: two polarities per write site" 2 (count "stuck-stream-bit");
  check tint "drop-write: one per write site" 1 (count "drop-stream-write");
  check tint "loop: both deltas" 2 (count "loop-off-by-one");
  check tbool "at least the acceptance kinds" true
    (List.length (List.sort_uniq compare (List.map Fault.kind_name sites)) >= 4)

let test_sites_skip_software_procs () =
  let prog =
    elab
      {|
stream int32 s_out depth 16;

process sw host(int32 n) {
  int32 mem[4];
  mem[0] = n;
  stream_write(s_out, mem[0]);
}
|}
  in
  let c = Driver.compile ~strategy:Driver.baseline prog in
  check tint "software processes contribute no sites" 0
    (List.length (Fault.sites c.Driver.ir))

(* --- live-lock watchdog ------------------------------------------------------- *)

let spin_source =
  {|
stream int32 data_in depth 16;
stream int32 data_out depth 16;

process hw worker(int32 n) {
  int32 flags[4];
  int32 i;
  flags[0] = 0;
  for (i = 0; i < n; i = i + 1) {
    int32 v;
    v = stream_read(data_in);
    stream_write(data_out, v + 1);
  }
  flags[0] = 1;
  int32 done;
  done = flags[0];
  while (done == 0) {
    done = flags[0];
  }
}
|}

let run_spin ?watchdog () =
  run
    ~faults:[ Fault.Read_for_write { fproc = "worker"; select = Fault.Nth 1 } ]
    ?watchdog
    ~feeds:[ ("data_in", [ 1L; 2L; 3L; 4L ]) ]
    ~drains:[ "data_out" ]
    ~params:[ ("worker", [ ("n", 4L) ]) ]
    ~max_cycles:5_000 spin_source

let test_watchdog_classifies_livelock () =
  (* without the watchdog the spin burns the whole budget... *)
  let free = run_spin () in
  check tbool "no watchdog: out of cycles" true
    (free.Driver.engine.Engine.outcome = Engine.Out_of_cycles);
  (* ...with it, the spin is named in well under 10% of that budget *)
  let wd = run_spin ~watchdog:(Some 200) () in
  match wd.Driver.engine.Engine.outcome with
  | Engine.Livelock spinning ->
      check tbool "spinning process named" true
        (List.exists (fun (p, _) -> p = "worker") spinning);
      check tbool "detected in <10% of the budget" true
        (wd.Driver.engine.Engine.cycles * 10 < free.Driver.engine.Engine.cycles)
  | _ -> Alcotest.fail "watchdog did not classify the spin as live-lock"

let test_watchdog_quiet_on_clean_run () =
  let r = run_worker ~watchdog:(Some 200) () in
  check tbool "clean run unaffected by watchdog" true
    (r.Driver.engine.Engine.outcome = Engine.Finished)

let test_watchdog_waits_for_real_hang () =
  (* a genuine deadlock (empty feed) should still be reported as Hang,
     not Livelock: no activity at all trips the stronger detector *)
  let r =
    run ~watchdog:(Some 200)
      ~feeds:[ ("data_in", []) ]
      ~drains:[ "data_out" ]
      ~params:[ ("worker", [ ("n", 3L) ]) ]
      two_site_source
  in
  match r.Driver.engine.Engine.outcome with
  | Engine.Hang _ -> ()
  | Engine.Livelock _ -> Alcotest.fail "starved read misclassified as live-lock"
  | _ -> Alcotest.fail "expected a hang"

(* --- campaign ------------------------------------------------------------------ *)

let micro_workload () =
  Campaign.workload ~name:"micro"
    ~feeds:[ ("s_in", [ 5L; 9L; 13L; 17L ]) ]
    ~drains:[ "s_out" ]
    ~params:[ ("kern", [ ("n", 4L) ]) ]
    {|
stream int32 s_in depth 16;
stream int32 s_out depth 16;

process hw kern(int32 n) {
  int32 buf[4];
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    int32 x;
    x = stream_read(s_in);
    assert(x < 1000);
    buf[i % 4] = x;
    stream_write(s_out, buf[i % 4] * 2);
  }
}
|}

let test_campaign_classifies_all_mutants () =
  let w = micro_workload () in
  let sites = Campaign.enumerate w in
  check tbool "several sites" true (List.length sites >= 5);
  let r = Campaign.run [ w ] in
  check tint "every site ran under every strategy"
    (List.length sites * List.length Campaign.default_strategies)
    (List.length r.Campaign.runs);
  check tint "nothing dropped" 0 r.Campaign.dropped;
  (* summaries partition the runs *)
  List.iter
    (fun (s : Campaign.strategy_summary) ->
      check tint
        ("summary total for " ^ s.Campaign.strategy)
        (List.length sites)
        (s.Campaign.by_assertion + s.Campaign.by_hang + s.Campaign.silent
       + s.Campaign.benign + s.Campaign.over_budget))
    r.Campaign.summaries

let test_campaign_detection_monotone () =
  (* instrumented strategies must detect at least as much as baseline —
     the acceptance criterion for the bundled sweep is strict *)
  let r = Campaign.run [ micro_workload () ] in
  let det name =
    Campaign.detected_of_summary
      (List.find (fun (s : Campaign.strategy_summary) -> s.Campaign.strategy = name)
         r.Campaign.summaries)
  in
  check tbool "optimized >= baseline" true (det "optimized" >= det "baseline")

let test_campaign_cap_round_robin () =
  let w = micro_workload () in
  let config = { Campaign.default_config with Campaign.max_mutants = Some 4 } in
  let r = Campaign.run ~config [ w ] in
  check tint "capped" (4 * List.length Campaign.default_strategies)
    (List.length r.Campaign.runs);
  check tbool "drop count recorded" true
    (r.Campaign.dropped = List.length (Campaign.enumerate w) - 4);
  (* round-robin: with 4 slots and >=4 kinds available, no kind hogs *)
  check tbool "multiple kinds survive the cap" true
    (List.length r.Campaign.kind_counts >= 3)

let test_campaign_render_and_json () =
  let r =
    Campaign.run
      ~config:{ Campaign.default_config with Campaign.max_mutants = Some 3 }
      [ micro_workload () ]
  in
  let table = Campaign.render r in
  check tbool "table names strategies" true
    (has_sub ~sub:"baseline" table && has_sub ~sub:"optimized" table);
  check tbool "table has the kind matrix" true
    (has_sub ~sub:"assertion coverage by fault kind" table);
  let json = Json.to_string (Campaign.json_of r) in
  check tbool "json has runs" true (has_sub ~sub:"\"runs\"" json);
  check tbool "json has strategies" true (has_sub ~sub:"\"strategies\"" json);
  check tbool "json quotes classes" true
    (has_sub ~sub:"\"class\"" json)

(* Fork-point evaluation must classify every mutant exactly like the
   from-reset path, at every job count — the whole optimization rests
   on this invariant (CI gates it on the bundled workloads too). *)
let test_campaign_fork_matches_from_reset () =
  let w = micro_workload () in
  let classes mode jobs =
    let config =
      { Campaign.default_config with Campaign.mode; jobs = Some jobs }
    in
    Campaign.render_classes (Campaign.run ~config [ w ])
  in
  let reset = classes Campaign.From_reset 1 in
  check tbool "classification map is non-empty" true (String.length reset > 0);
  List.iter
    (fun jobs ->
      check tbool
        (Printf.sprintf "fork jobs=%d matches from-reset" jobs)
        true
        (classes Campaign.Fork jobs = reset))
    [ 1; 4 ]

(* The liveness pre-filter: the micro workload feeds exactly n=4 tokens,
   so the +1 loop mutant blocks reading a 5th token on every execution
   (provable), while the -1 mutant completes with short output (not a
   hang, must stay unproved). *)
let test_prefilter_hang_verdicts () =
  let w = micro_workload () in
  let faults = Campaign.enumerate w in
  let o = w.Campaign.options in
  let verdicts =
    Faults.Prefilter.hang_verdicts ~params:o.Driver.params
      ~feeds:(List.map (fun (s, vs) -> (s, List.length vs)) o.Driver.feeds)
      ~drains:o.Driver.drains w.Campaign.program faults
  in
  check tint "one verdict per fault" (List.length faults) (List.length verdicts);
  List.iter2
    (fun f v ->
      match f with
      | Fault.Loop_bound_off_by_one { delta; _ } when delta > 0L ->
          check tbool
            ("+1 loop mutant proved hanging: " ^ Fault.describe f)
            true
            (match v with Faults.Prefilter.Certain_hang _ -> true | _ -> false)
      | Fault.Loop_bound_off_by_one _ ->
          (* -1 truncates: completes with short output, not a hang *)
          check tbool
            ("-1 loop mutant not claimed: " ^ Fault.describe f)
            true (v = Faults.Prefilter.Hang_unknown)
      | _ -> ())
    faults verdicts;
  check tbool "at least one hang proved" true
    (List.exists
       (function Faults.Prefilter.Certain_hang _ -> true | _ -> false)
       verdicts)

(* Pruning may only skip simulations, never change a classification:
   the map must be byte-identical with the pre-filter on and off. *)
let test_campaign_prune_hangs_identity () =
  let w = micro_workload () in
  let run prune =
    Campaign.run
      ~config:{ Campaign.default_config with Campaign.prune_hangs = prune }
      [ w ]
  in
  let pruned = run true and simulated = run false in
  check tbool "pre-filter proves at least one hang" true
    (pruned.Campaign.pruned_hang > 0);
  check tint "nothing pruned when disabled" 0 simulated.Campaign.pruned_hang;
  check Alcotest.string "classification map is byte-identical"
    (Campaign.render_classes simulated)
    (Campaign.render_classes pruned);
  check tbool "json reports the pruned count" true
    (has_sub ~sub:"\"pruned_hang\"" (Json.to_string (Campaign.json_of pruned)))

let test_campaign_static_prefilter_prunes () =
  (* micro's stream write is [buf[i % 4] * 2] — always even — so the
     stuck-at-0 bit-0 mutant is provably an identity and must be
     pruned (classified Benign without simulating), in both modes *)
  let w = micro_workload () in
  let run_mode mode =
    Campaign.run ~config:{ Campaign.default_config with Campaign.mode } [ w ]
  in
  let fork = run_mode Campaign.Fork in
  let reset = run_mode Campaign.From_reset in
  check tbool "some mutants pruned statically" true (fork.Campaign.pruned_static > 0);
  check tint "both modes prune identically" fork.Campaign.pruned_static
    reset.Campaign.pruned_static;
  check tbool "json reports the pruned count" true
    (has_sub ~sub:"\"pruned_static\"" (Json.to_string (Campaign.json_of fork)))

(* --- notification routing ------------------------------------------------------ *)

let two_proc_source =
  {|
stream int32 a_out depth 16;
stream int32 b_out depth 16;

process hw p0(int32 n) {
  int32 x;
  x = n;
  assert(x > 0);
  stream_write(a_out, x);
}

process hw p1(int32 n) {
  int32 y;
  y = n;
  assert(y < 100);
  stream_write(b_out, y);
}
|}

let test_notify_per_stream_cases () =
  let c = Driver.compile ~strategy:Driver.parallelized (elab two_proc_source) in
  let src = c.Driver.notification_source in
  (* split the generated C at the second drain loop *)
  let idx =
    let sub = "co_stream_read(__err_p1" in
    let n = String.length sub and l = String.length src in
    let rec go i =
      if i + n > l then Alcotest.fail "no __err_p1 drain loop"
      else if String.sub src i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  let first = String.sub src 0 idx in
  let second = String.sub src idx (String.length src - idx) in
  check tbool "p0's loop reports p0's assertion" true (has_sub ~sub:"`x > 0'" first);
  check tbool "p0's loop omits p1's assertion" false (has_sub ~sub:"`y < 100'" first);
  check tbool "p1's loop reports p1's assertion" true (has_sub ~sub:"`y < 100'" second);
  check tbool "p1's loop omits p0's assertion" false (has_sub ~sub:"`x > 0'" second)

let test_notify_shared_channel_words () =
  (* under 32-way sharing both assertions ride one stream: its single
     drain loop must carry both, keyed by distinct failure words *)
  let c = Driver.compile ~strategy:Driver.optimized (elab two_proc_source) in
  let src = c.Driver.notification_source in
  check tbool "both assertions in the shared loop" true
    (has_sub ~sub:"`x > 0'" src && has_sub ~sub:"`y < 100'" src)

let () =
  Alcotest.run "faults"
    [
      ( "selector",
        [
          Alcotest.test_case "All hits every site" `Quick test_selector_all_hits_every_site;
          Alcotest.test_case "Nth hits one site" `Quick test_selector_nth_hits_one_site;
          Alcotest.test_case "out-of-range Nth is a no-op" `Quick
            test_selector_nth_out_of_range_is_noop;
          Alcotest.test_case "other procs untouched" `Quick test_apply_other_procs_untouched;
        ] );
      ( "kinds",
        [
          Alcotest.test_case "stuck bit set" `Quick test_stuck_bit_sets_bit_in_output;
          Alcotest.test_case "stuck bit cleared" `Quick test_stuck_bit_clears_bit_in_output;
          Alcotest.test_case "dropped write advances" `Quick
            test_drop_write_advances_without_pushing;
          Alcotest.test_case "loop +1 over-reads" `Quick test_loop_bound_plus_one_over_reads;
          Alcotest.test_case "loop -1 truncates" `Quick test_loop_bound_minus_one_truncates;
          Alcotest.test_case "software sim stays clean" `Quick
            test_faulted_software_sim_still_clean;
        ] );
      ( "sites",
        [
          Alcotest.test_case "all kinds enumerated" `Quick test_sites_cover_all_kinds;
          Alcotest.test_case "software procs skipped" `Quick test_sites_skip_software_procs;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "live-lock classified fast" `Quick
            test_watchdog_classifies_livelock;
          Alcotest.test_case "quiet on clean run" `Quick test_watchdog_quiet_on_clean_run;
          Alcotest.test_case "real hang stays Hang" `Quick test_watchdog_waits_for_real_hang;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "classifies all mutants" `Quick
            test_campaign_classifies_all_mutants;
          Alcotest.test_case "detection monotone" `Quick test_campaign_detection_monotone;
          Alcotest.test_case "cap is round-robin" `Quick test_campaign_cap_round_robin;
          Alcotest.test_case "render + json" `Quick test_campaign_render_and_json;
          Alcotest.test_case "fork matches from-reset" `Quick
            test_campaign_fork_matches_from_reset;
          Alcotest.test_case "hang verdicts on micro" `Quick test_prefilter_hang_verdicts;
          Alcotest.test_case "hang pruning preserves classes" `Quick
            test_campaign_prune_hangs_identity;
          Alcotest.test_case "static pre-filter prunes" `Quick
            test_campaign_static_prefilter_prunes;
        ] );
      ( "notify",
        [
          Alcotest.test_case "per-stream cases" `Quick test_notify_per_stream_cases;
          Alcotest.test_case "shared channel carries all" `Quick
            test_notify_shared_channel_words;
        ] );
    ]
