(* Frontend tests: lexer, parser, type checker, pretty-printer. *)

open Front

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let parse src = Parser.parse ~file:"test.c" src
let elab src = Typecheck.parse_and_check ~file:"test.c" src

(* --- Lexer -------------------------------------------------------------- *)

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let test_lex_basic () =
  check tbool "idents and ints" true
    (toks "x 42 0x2A"
    = [ Lexer.IDENT "x"; Lexer.INT 42L; Lexer.INT 42L; Lexer.EOF ]);
  check tbool "operators" true
    (toks "<< >> <= >= == != && ||"
    = Lexer.[ SHL; SHR; LE; GE; EQ; NE; AMPAMP; PIPEPIPE; EOF ])

let test_lex_keywords () =
  check tbool "keywords lex as KW" true
    (toks "process hw int32 assert"
    = Lexer.[ KW "process"; KW "hw"; KW "int32"; KW "assert"; EOF ])

let test_lex_comments () =
  check tbool "line comment skipped" true (toks "a // comment\n b" = Lexer.[ IDENT "a"; IDENT "b"; EOF ]);
  check tbool "block comment skipped" true (toks "a /* x\ny */ b" = Lexer.[ IDENT "a"; IDENT "b"; EOF ])

let test_lex_pragma () =
  check tbool "pragma token" true (toks "#pragma pipeline\nfor" = Lexer.[ PRAGMA "pipeline"; KW "for"; EOF ])

let test_lex_positions () =
  let lexed = Lexer.tokenize ~file:"f.c" "x\n  y" in
  match lexed with
  | [ a; b; _eof ] ->
      check tint "x line" 1 a.Lexer.loc.Loc.line;
      check tint "y line" 2 b.Lexer.loc.Loc.line;
      check tint "y col" 3 b.Lexer.loc.Loc.col
  | _ -> Alcotest.fail "expected 3 tokens"

let test_lex_big_literal () =
  (* Figure 3 of the paper uses 4294967296, which exceeds int32. *)
  check tbool "big literal" true (toks "4294967296" = Lexer.[ INT 4294967296L; EOF ])

let test_lex_error () =
  Alcotest.check_raises "bad char" (Lexer.Error ("unexpected character '@'", Loc.make ~file:"<string>" ~line:1 ~col:1))
    (fun () -> ignore (Lexer.tokenize "@"))

(* --- Parser ------------------------------------------------------------- *)

let simple_proc body = Printf.sprintf "process hw main() { %s }" body

let first_proc src =
  match (parse src).Ast.procs with p :: _ -> p | [] -> Alcotest.fail "no proc"

let test_parse_empty_proc () =
  let p = first_proc "process hw main() { }" in
  check tstr "name" "main" p.Ast.pname;
  check tbool "kind" true (p.Ast.kind = Ast.Hardware);
  check tint "body" 0 (List.length p.Ast.body)

let test_parse_streams () =
  let prog = parse "stream int32 a; stream uint16 b depth 4; process sw t() { }" in
  (match prog.Ast.streams with
  | [ a; b ] ->
      check tstr "a name" "a" a.Ast.sname;
      check tint "a default depth" 16 a.Ast.depth;
      check tint "b depth" 4 b.Ast.depth;
      check tbool "b elem" true (b.Ast.elem = Ast.Tint (Ast.Unsigned, Ast.W16))
  | _ -> Alcotest.fail "expected 2 streams");
  match prog.Ast.procs with
  | [ p ] -> check tbool "sw kind" true (p.Ast.kind = Ast.Software)
  | _ -> Alcotest.fail "expected 1 proc"

let test_parse_extern () =
  let prog = parse "extern int64 f(int32, int32 b) latency 3; process hw m() { }" in
  match prog.Ast.externs with
  | [ x ] ->
      check tstr "name" "f" x.Ast.xname;
      check tint "arity" 2 (List.length x.Ast.xargs);
      check tint "latency" 3 x.Ast.xlatency
  | _ -> Alcotest.fail "expected 1 extern"

let test_parse_precedence () =
  let p = first_proc (simple_proc "int32 x; x = 1 + 2 * 3;") in
  match List.rev p.Ast.body with
  | { Ast.s = Ast.Assign (_, { e = Ast.Binop (Ast.Add, _, { e = Ast.Binop (Ast.Mul, _, _); _ }); _ }); _ } :: _ ->
      ()
  | _ -> Alcotest.fail "wrong precedence tree"

let test_parse_cmp_vs_shift () =
  let p = first_proc (simple_proc "int32 x; x = 1 << 2 + 3;") in
  (* + binds tighter than << *)
  match List.rev p.Ast.body with
  | { Ast.s = Ast.Assign (_, { e = Ast.Binop (Ast.Shl, _, { e = Ast.Binop (Ast.Add, _, _); _ }); _ }); _ } :: _ ->
      ()
  | _ -> Alcotest.fail "wrong shift/add precedence"

let test_parse_assert_text () =
  let p = first_proc (simple_proc "int32 j; j = 1; assert(j >  0);") in
  let asserts = Ast.assertions_of p.Ast.body in
  match asserts with
  | [ (_, _, txt) ] -> check tstr "raw source text" "j >  0" txt
  | _ -> Alcotest.fail "expected one assertion"

let test_parse_pipeline_pragma () =
  let p = first_proc (simple_proc "int32 i; #pragma pipeline\nfor (i = 0; i < 8; i = i + 1) { }") in
  let found = ref false in
  Ast.iter_stmts
    (fun st -> match st.Ast.s with Ast.For (h, _) -> found := h.Ast.pipelined | _ -> ())
    p.Ast.body;
  check tbool "pipelined flag" true !found

let test_parse_if_else_chain () =
  let p = first_proc (simple_proc "int32 x; if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; }") in
  match List.rev p.Ast.body with
  | { Ast.s = Ast.If (_, _, [ { Ast.s = Ast.If (_, _, [ _ ]); _ } ]); _ } :: _ -> ()
  | _ -> Alcotest.fail "wrong if/else chain shape"

let test_parse_stream_ops () =
  let p =
    first_proc (simple_proc "int32 v; v = stream_read(inp); stream_write(outp, v + 1);")
  in
  check tbool "streams used" true (Ast.streams_used p.Ast.body = [ "inp"; "outp" ])

let test_parse_decl_with_stream_read () =
  let p = first_proc (simple_proc "int32 v = stream_read(inp);") in
  let reads = ref 0 in
  Ast.iter_stmts (fun st -> match st.Ast.s with Ast.Stream_read _ -> incr reads | _ -> ()) p.Ast.body;
  check tint "desugared to decl + read" 1 !reads

let test_parse_error_reports_location () =
  (try
     ignore (parse "process hw main() { int32 }");
     Alcotest.fail "should not parse"
   with Parser.Error (_, loc) -> check tint "error line" 1 loc.Loc.line)

let test_parse_array_decl_and_index () =
  let p = first_proc (simple_proc "int32 a[8]; a[0] = 1; a[1] = a[0] + 1;") in
  check tbool "array recorded" true
    (Ast.arrays_declared p.Ast.body = [ ("a", Ast.int32_t, 8) ])

let test_parse_const_array () =
  let p = first_proc (simple_proc "const int32 t[3] = { 1, -2, 3 }; int32 v; v = t[1];") in
  let found = ref None in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Const_array (elt, name, vals) -> found := Some (elt, name, vals)
      | _ -> ())
    p.Ast.body;
  match !found with
  | Some (elt, name, vals) ->
      check tbool "element type" true (elt = Ast.int32_t);
      check tstr "name" "t" name;
      check tbool "values" true (vals = [ 1L; -2L; 3L ])
  | None -> Alcotest.fail "const array not parsed"

let test_parse_const_array_size_mismatch () =
  try
    ignore (parse (simple_proc "const int32 t[2] = { 1, 2, 3 };"));
    Alcotest.fail "size mismatch should be rejected"
  with Parser.Error _ -> ()

let test_const_array_roundtrip () =
  let src = simple_proc "const int32 t[4] = { 9, 8, 7, 6 }; int32 v; v = t[0];" in
  let printed = Pretty.program_to_string (parse src) in
  let reparsed = parse printed in
  check tint "reparsed" 1 (List.length reparsed.Ast.procs)

let test_parse_cast () =
  let p = first_proc (simple_proc "int64 x; int32 y; y = (int32)x;") in
  match List.rev p.Ast.body with
  | { Ast.s = Ast.Assign (_, { e = Ast.Cast (Ast.Tint (Ast.Signed, Ast.W32), _); _ }); _ } :: _ -> ()
  | _ -> Alcotest.fail "expected cast node"

(* --- Typecheck ---------------------------------------------------------- *)

let test_type_promotion () =
  let prog = elab (simple_proc "int32 a; int64 b; int64 c; c = a + b;") in
  let p = List.hd prog.Ast.procs in
  let ok = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Assign (Ast.Lvar "c", rhs) ->
          (* a is widened to int64 by an inserted cast *)
          (match rhs.Ast.e with
          | Ast.Binop (Ast.Add, l, r) ->
              ok :=
                Ast.equal_ty rhs.Ast.ety Ast.int64_t
                && Ast.equal_ty l.Ast.ety Ast.int64_t
                && Ast.equal_ty r.Ast.ety Ast.int64_t
          | _ -> ())
      | _ -> ())
    p.Ast.body;
  check tbool "promoted to int64" true !ok

let test_type_unsigned_wins_at_equal_width () =
  let prog = elab (simple_proc "int32 a; uint32 b; bool c; c = a < b;") in
  let p = List.hd prog.Ast.procs in
  let ok = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Assign (Ast.Lvar "c", { e = Ast.Cast (_, { e = Ast.Binop (Ast.Lt, l, _); _ }); _ })
      | Ast.Assign (Ast.Lvar "c", { e = Ast.Binop (Ast.Lt, l, _); _ }) ->
          ok := Ast.equal_ty l.Ast.ety Ast.uint32_t
      | _ -> ())
    p.Ast.body;
  check tbool "unsigned comparison" true !ok

let test_type_condition_boolified () =
  let prog = elab (simple_proc "int32 x; if (x) { x = 1; }") in
  let p = List.hd prog.Ast.procs in
  let ok = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.If (c, _, _) -> ok := Ast.equal_ty c.Ast.ety Ast.Tbool
      | _ -> ())
    p.Ast.body;
  check tbool "int condition becomes bool" true !ok

let expect_type_error src =
  try
    ignore (elab src);
    Alcotest.fail "expected type error"
  with Typecheck.Error _ -> ()

let test_type_errors () =
  expect_type_error (simple_proc "x = 1;");
  expect_type_error (simple_proc "int32 a[4]; int32 x; x = a;");
  expect_type_error (simple_proc "int32 x; x = stream_read(nosuch);");
  expect_type_error (simple_proc "int32 x; x = f(1);");
  expect_type_error (simple_proc "return 3;");
  expect_type_error "process hw a() { } process hw a() { }"

let test_type_literal_width () =
  let prog = elab (simple_proc "int64 c; c = 4294967296;") in
  let p = List.hd prog.Ast.procs in
  let ok = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Assign (_, rhs) -> ok := Ast.equal_ty rhs.Ast.ety Ast.int64_t
      | _ -> ())
    p.Ast.body;
  check tbool "big literal is int64" true !ok

let test_type_extern_call () =
  let prog =
    elab "extern int32 fir(int32, int32) latency 2; process hw m() { int32 y; y = fir(1, 2); }"
  in
  check tint "elaborated" 1 (List.length prog.Ast.procs)

(* --- Pretty-printer round trip ------------------------------------------ *)

(* Strip types and locations so parse (print p) can be compared to p. *)
let rec strip_expr (e : Ast.expr) : Ast.expr =
  let node =
    match e.Ast.e with
    | Ast.Int n -> Ast.Int n
    | Ast.Bool b -> Ast.Bool b
    | Ast.Var v -> Ast.Var v
    | Ast.Index (a, i) -> Ast.Index (a, strip_expr i)
    | Ast.Unop (Ast.Neg, { Ast.e = Ast.Int n; _ }) ->
        (* the parser folds negated literals; normalize for comparison *)
        Ast.Int (Int64.neg n)
    | Ast.Unop (op, a) -> (
        match (strip_expr a).Ast.e with
        | Ast.Int n when op = Ast.Neg -> Ast.Int (Int64.neg n)
        | node -> Ast.Unop (op, { Ast.e = node; ety = Ast.Tvoid; eloc = Loc.none }))
    | Ast.Binop (op, a, b) -> Ast.Binop (op, strip_expr a, strip_expr b)
    | Ast.Cast (t, a) -> Ast.Cast (t, strip_expr a)
    | Ast.Call (f, args) -> Ast.Call (f, List.map strip_expr args)
  in
  { Ast.e = node; ety = Ast.Tvoid; eloc = Loc.none }

let rec strip_lv = function
  | Ast.Lvar v -> Ast.Lvar v
  | Ast.Lindex (a, i) -> Ast.Lindex (a, strip_expr i)

and strip_stmt (st : Ast.stmt) : Ast.stmt =
  let s =
    match st.Ast.s with
    | Ast.Decl (t, n, i) -> Ast.Decl (t, n, Option.map strip_expr i)
    | Ast.Assign (lv, e) -> Ast.Assign (strip_lv lv, strip_expr e)
    | Ast.If (c, t, f) -> Ast.If (strip_expr c, List.map strip_stmt t, List.map strip_stmt f)
    | Ast.While (c, b) -> Ast.While (strip_expr c, List.map strip_stmt b)
    | Ast.For (h, b) ->
        Ast.For
          ( {
              Ast.init = Option.map strip_stmt h.Ast.init;
              cond = strip_expr h.Ast.cond;
              step = Option.map strip_stmt h.Ast.step;
              pipelined = h.Ast.pipelined;
            },
            List.map strip_stmt b )
    | Ast.Assert (c, _) -> Ast.Assert (strip_expr c, "")
    | Ast.Stream_read (lv, s) -> Ast.Stream_read (strip_lv lv, s)
    | Ast.Stream_write (s, e) -> Ast.Stream_write (s, strip_expr e)
    | Ast.Return e -> Ast.Return (Option.map strip_expr e)
    | Ast.Block b -> Ast.Block (List.map strip_stmt b)
    | Ast.Tapstmt (id, args) -> Ast.Tapstmt (id, List.map strip_expr args)
    | Ast.Const_array _ as c -> c
  in
  { Ast.s; sloc = Loc.none }

let strip_prog (p : Ast.program) : Ast.program =
  {
    p with
    Ast.procs =
      List.map
        (fun (pr : Ast.proc) ->
          { pr with Ast.body = List.map strip_stmt pr.Ast.body; ploc = Loc.none })
        p.Ast.procs;
  }

let roundtrip src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try parse printed
    with Parser.Error (msg, loc) ->
      Alcotest.fail
        (Printf.sprintf "reparse failed at %s: %s\n--- printed ---\n%s" (Loc.to_string loc) msg printed)
  in
  let a = Ast.show_program (strip_prog p1) and b = Ast.show_program (strip_prog p2) in
  check tstr "roundtrip AST" a b

let test_roundtrip_cases () =
  roundtrip "process hw main() { int32 x; x = (1 + 2) * 3; }";
  roundtrip "stream int32 s depth 4;\nprocess hw m() { int32 v; v = stream_read(s); stream_write(s, v); }";
  roundtrip (simple_proc "int32 a[16]; int32 i; #pragma pipeline\nfor (i = 0; i < 16; i = i + 1) { a[i] = i * i; }");
  roundtrip (simple_proc "int32 x; if (x > 0 && x < 10 || x == 42) { x = -x; } else { x = ~x; }");
  roundtrip (simple_proc "int64 c; c = (int64)4294967286 > (int64)4294967296;");
  roundtrip "extern int32 ext(int32) latency 2; process hw m() { int32 y; y = ext(7); assert(y != 0); }"

(* Round-trip property over the bundled applications: every real
   program ships through print/parse unchanged.  The assertion-mining
   subsystem depends on this — injection pretty-prints and re-parses
   the instrumented program, so the printer must be total over
   arbitrary app-sized ASTs, not just the toy cases above. *)
let bundled_app_sources () =
  [
    ("fir", Apps.Fir_src.source ());
    ("dct", Apps.Dct_src.source ());
    ("des3", Apps.Des_src.demo_source ());
    ("edge", Apps.Edge_src.demo_source ());
    ("pulse", Apps.Pulse_src.source ());
  ]

let test_roundtrip_bundled_apps () =
  List.iter (fun (_name, src) -> roundtrip src) (bundled_app_sources ())

(* And the instrumented forms: compile each app under every synthesis
   strategy and round-trip the instrumented AST's printed source. *)
let test_roundtrip_instrumented () =
  let strategies =
    Core.Driver.
      [
        ("baseline", baseline); ("unoptimized", unoptimized);
        ("parallelized", parallelized); ("optimized", optimized);
        ("carte", carte);
      ]
  in
  List.iter
    (fun (name, src) ->
      let prog = Typecheck.parse_and_check ~file:(name ^ ".c") src in
      List.iter
        (fun (_sname, strategy) ->
          let c = Core.Driver.compile ~strategy prog in
          roundtrip (Pretty.program_to_string c.Core.Driver.instrumented))
        strategies)
    (bundled_app_sources ())

(* QCheck: random expressions round-trip through print/parse. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.mk_int (Int64.of_int n)) (int_range (-100) 1000);
        map (fun c -> Ast.mk_var (String.make 1 c)) (char_range 'a' 'e');
      ]
  in
  let op =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Band; Bor; Bxor; Shl; Shr; Lt; Le; Gt; Ge; Eq; Ne ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun op a b -> Ast.mk_expr Ast.Tvoid (Ast.Binop (op, a, b)))
                op (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun a -> Ast.mk_expr Ast.Tvoid (Ast.Unop (Ast.Neg, a))) (self (depth - 1)));
          ])
    4

let expr_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"pretty/parse expression roundtrip"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let src = Printf.sprintf "process hw m() { int32 r; r = %s; }" (Pretty.expr_to_string e) in
      let p = parse src in
      match List.rev (List.hd p.Ast.procs).Ast.body with
      | { Ast.s = Ast.Assign (_, e2); _ } :: _ ->
          Ast.show_expr (strip_expr e) = Ast.show_expr (strip_expr e2)
      | _ -> false)

let () =
  Alcotest.run "front"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lex_basic;
          Alcotest.test_case "keywords" `Quick test_lex_keywords;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "pragma" `Quick test_lex_pragma;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "big literal" `Quick test_lex_big_literal;
          Alcotest.test_case "lex error" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "empty process" `Quick test_parse_empty_proc;
          Alcotest.test_case "streams" `Quick test_parse_streams;
          Alcotest.test_case "extern" `Quick test_parse_extern;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "shift precedence" `Quick test_parse_cmp_vs_shift;
          Alcotest.test_case "assert source text" `Quick test_parse_assert_text;
          Alcotest.test_case "pipeline pragma" `Quick test_parse_pipeline_pragma;
          Alcotest.test_case "if/else chain" `Quick test_parse_if_else_chain;
          Alcotest.test_case "stream ops" `Quick test_parse_stream_ops;
          Alcotest.test_case "decl = stream_read" `Quick test_parse_decl_with_stream_read;
          Alcotest.test_case "error location" `Quick test_parse_error_reports_location;
          Alcotest.test_case "arrays" `Quick test_parse_array_decl_and_index;
          Alcotest.test_case "const arrays" `Quick test_parse_const_array;
          Alcotest.test_case "const array size mismatch" `Quick test_parse_const_array_size_mismatch;
          Alcotest.test_case "const array roundtrip" `Quick test_const_array_roundtrip;
          Alcotest.test_case "cast" `Quick test_parse_cast;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "width promotion" `Quick test_type_promotion;
          Alcotest.test_case "unsigned at equal width" `Quick test_type_unsigned_wins_at_equal_width;
          Alcotest.test_case "condition boolified" `Quick test_type_condition_boolified;
          Alcotest.test_case "rejects bad programs" `Quick test_type_errors;
          Alcotest.test_case "literal widths" `Quick test_type_literal_width;
          Alcotest.test_case "extern call" `Quick test_type_extern_call;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip programs" `Quick test_roundtrip_cases;
          Alcotest.test_case "roundtrip bundled apps" `Quick test_roundtrip_bundled_apps;
          Alcotest.test_case "roundtrip instrumented apps" `Quick
            test_roundtrip_instrumented;
          QCheck_alcotest.to_alcotest expr_roundtrip_prop;
        ] );
    ]
