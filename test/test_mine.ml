(* Assertion-mining tests: template inference over recorded traces,
   cross-stimulus falsification filtering, injection round-trip through
   the pretty-printer and type checker, and determinism of the
   mutant-kill ranking. *)

open Front
module Driver = Core.Driver
module Trace = Mine.Trace
module Infer = Mine.Infer
module Rank = Mine.Rank

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let elab src = Typecheck.parse_and_check ~file:"test.c" src

let has_sub ~sub s =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A windowed accumulator (same shape as examples/mine_demo.c): every
   template kind has something to latch onto under the auto stimulus
   (ramp feed, n = 32). *)
let demo_source =
  {|
stream int32 m_in depth 16;
stream int32 m_out depth 16;

process hw window(int32 n) {
  int32 acc;
  int32 i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int32 v;
    v = stream_read(m_in);
    acc = acc + v;
    assert(acc >= 0);
    stream_write(m_out, acc);
  }
}
|}

let demo_prog () = elab demo_source

let demo_traces prog =
  let stimuli = Trace.variants (Trace.auto_options prog) in
  (stimuli, Trace.collect prog stimuli)

let kinds cands =
  List.sort_uniq compare
    (List.map (fun c -> Infer.template_kind c.Infer.template) cands)

(* --- Inference ------------------------------------------------------------------ *)

let test_infer_templates () =
  let prog = demo_prog () in
  let _, traces = demo_traces prog in
  check tbool "all stimuli pass" true (List.length traces = 5);
  let cands = Infer.infer prog traces in
  let ks = kinds cands in
  List.iter
    (fun k -> check tbool (k ^ " inferred") true (List.mem k ks))
    [
      "const-value"; "value-range"; "var-ordering"; "loop-bound";
      "stream-length"; "stream-monotonic";
    ];
  (* the structural invariants carry the exact workload size *)
  check tbool "loop bound is 32" true
    (List.exists
       (fun c -> c.Infer.template = Infer.Loop_bound { iters = 32 })
       cands);
  check tbool "stream length is 32" true
    (List.exists
       (fun c ->
         c.Infer.template = Infer.Stream_length { stream = "m_out"; len = 32 })
       cands);
  (* the ramp feed keeps acc growing, so the output stream is monotone *)
  check tbool "m_out nondecreasing" true
    (List.exists
       (fun c ->
         c.Infer.template
         = Infer.Stream_monotonic { stream = "m_out"; nondecreasing = true })
       cands);
  (* uids number the canonical order from 0 *)
  List.iteri (fun i c -> check tint "uid order" i c.Infer.uid) cands

(* A constant input feed makes the loop-read value look constant under
   the base stimulus, but the shifted/scaled/halved feed variants move
   it — the falsification filter must kill the const-value candidate
   once the variant traces are merged. *)
let const_feed_source =
  {|
stream int32 f_in depth 8;
stream int32 f_out depth 8;

process hw probe(int32 n) {
  int32 v;
  int32 i;
  for (i = 0; i < n; i = i + 1) {
    v = stream_read(f_in);
    stream_write(f_out, v + i);
  }
}
|}

let test_falsification_across_stimuli () =
  let prog = elab const_feed_source in
  let base =
    Trace.auto_options ~feeds:[ ("f_in", List.init 48 (fun _ -> 5L)) ] prog
  in
  let stimuli = Trace.variants base in
  let traces = Trace.collect prog stimuli in
  let base_only =
    List.filter (fun t -> t.Trace.tr_stimulus = "base") traces
  in
  check tint "base trace present" 1 (List.length base_only);
  let const_on_v cands =
    List.exists
      (fun c ->
        match c.Infer.template with
        | Infer.Const_value { var = "v"; value = 5L } -> true
        | _ -> false)
      cands
  in
  (* seen only the base run, v = 5 looks constant... *)
  check tbool "const holds on base alone" true
    (const_on_v (Infer.infer prog base_only));
  (* ...but the shifted/scaled/halved feeds falsify it *)
  check tbool "variants falsify the constant" false
    (const_on_v (Infer.infer prog traces));
  (* the weaker range invariant survives the merge instead *)
  check tbool "range on v survives" true
    (List.exists
       (fun c ->
         match c.Infer.template with
         | Infer.Value_range { var = "v"; _ } -> true
         | _ -> false)
       (Infer.infer prog traces))

let test_survivors_drop_false_candidate () =
  let prog = demo_prog () in
  let stimuli, traces = demo_traces prog in
  let cands = Infer.infer prog traces in
  let good =
    List.find
      (fun c -> c.Infer.template = Infer.Loop_bound { iters = 32 })
      cands
  in
  (* same anchor, wrong bound: injectable, but every run falsifies it *)
  let bad =
    {
      good with
      Infer.uid = good.Infer.uid + 1000;
      template = Infer.Loop_bound { iters = 7 };
      text = "trip count == 7";
    }
  in
  let kept = Infer.survivors prog ~stimuli [ good; bad ] in
  check tbool "true bound survives" true (List.mem good kept);
  check tbool "false bound filtered" false (List.mem bad kept)

let test_cap_round_robin () =
  let prog = demo_prog () in
  let _, traces = demo_traces prog in
  let cands = Infer.infer prog traces in
  let capped = Infer.cap_round_robin 6 cands in
  check tint "capped size" 6 (List.length capped);
  (* round-robin keeps the kind diversity of the full set *)
  check tbool "kind diversity preserved" true
    (List.length (kinds capped) >= min 6 (List.length (kinds cands)));
  (* order stays canonical (by uid) after capping *)
  let uids = List.map (fun c -> c.Infer.uid) capped in
  check tbool "uids sorted" true (List.sort compare uids = uids)

(* --- Injection ------------------------------------------------------------------ *)

let test_inject_roundtrip () =
  let prog = demo_prog () in
  let _, traces = demo_traces prog in
  let cands = Infer.cap_round_robin 12 (Infer.infer prog traces) in
  match Infer.inject prog cands with
  | None -> Alcotest.fail "injection of inferred candidates returned None"
  | Some (src, inst) ->
      (* the instrumented text is genuine InCA-C: it re-elaborates *)
      let reparsed = Typecheck.parse_and_check ~file:"mined.c" src in
      check tint "reparse preserves procs"
        (List.length inst.Ast.procs)
        (List.length reparsed.Ast.procs);
      (* counters / previous-value registers made it into the source *)
      check tbool "has mine counter" true (has_sub ~sub:"__mine_" src);
      (* strictly more assertions than the original program *)
      let n_orig = List.length (Core.Assertion.extract prog) in
      let n_inst = List.length (Core.Assertion.extract inst) in
      check tbool "asserts added" true (n_inst > n_orig);
      (* and the instrumented program still passes software simulation
         under the stimulus that produced the invariants *)
      let c = Driver.compile inst in
      let r = Driver.software_sim ~options:(Trace.auto_options prog) c in
      check tbool "instrumented sim passes" true (Interp.ok r)

let test_inject_out_of_scope () =
  let prog = demo_prog () in
  let _, traces = demo_traces prog in
  let cands = Infer.infer prog traces in
  (* anchor on a statement that really produces a variable, so the
     assert IS injected — then its unknown right-hand side must be
     caught by the re-parse type check and the whole injection
     discarded as None, not raised *)
  let anchor =
    List.find
      (fun c ->
        match c.Infer.template with Infer.Const_value _ -> true | _ -> false)
      cands
  in
  let var =
    match anchor.Infer.template with
    | Infer.Const_value { var; _ } -> var
    | _ -> assert false
  in
  let bogus =
    {
      anchor with
      Infer.uid = 999;
      template = Infer.Var_ordering { lhs = var; rhs = "no_such_var" };
      text = var ^ " <= no_such_var";
    }
  in
  check tbool "out-of-scope candidate rejected" true
    (Infer.inject prog [ bogus ] = None)

(* --- Ranking -------------------------------------------------------------------- *)

let small_config =
  {
    Rank.strategy = ("parallelized", Driver.parallelized);
    max_candidates = 6;
    max_mutants = Some 6;
    budget = None;
    watchdog = None;
    jobs = Some 1;
  }

let scored_key (s : Rank.scored) =
  (s.Rank.candidate.Infer.uid, s.Rank.kills, s.Rank.marginal, s.Rank.newly_detected)

let test_rank_deterministic () =
  let prog = demo_prog () in
  let r1 = Rank.mine ~config:small_config ~name:"demo" prog in
  let r2 = Rank.mine ~config:small_config ~name:"demo" prog in
  check tbool "same ranking" true
    (List.map scored_key r1.Rank.scored = List.map scored_key r2.Rank.scored);
  check tstr "same rendering" (Rank.render r1) (Rank.render r2);
  (* ranked best-first: marginal kills never increase down the list *)
  let margins = List.map (fun s -> s.Rank.marginal) r1.Rank.scored in
  check tbool "sorted by marginal" true
    (List.sort (fun a b -> compare b a) margins = margins)

let test_rank_fir_acceptance () =
  let w =
    List.find (fun w -> w.Campaign.wname = "fir") (Campaign.bundled ())
  in
  let r =
    Rank.mine ~name:w.Campaign.wname ~options:w.Campaign.options
      w.Campaign.program
  in
  check tbool "at least 5 survivors" true (r.Rank.survivors >= 5);
  check tint "every survivor scored" r.Rank.survivors (List.length r.Rank.scored);
  match r.Rank.scored with
  | [] -> Alcotest.fail "no scored candidates"
  | top :: _ ->
      (* the top-ranked invariant detects a fault the FIR's own
         assertions miss (the ISSUE acceptance criterion) *)
      check tbool "top candidate detects a new fault" true (top.Rank.marginal >= 1);
      check tbool "newly-detected faults are named" true
        (List.length top.Rank.newly_detected = top.Rank.marginal)

let test_rank_rejects_failing_base () =
  let prog = elab "process hw bad() { int32 x; x = 1; assert(x == 2); }" in
  check tbool "failing base stimulus raises" true
    (match Rank.mine ~name:"bad" prog with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "mine"
    [
      ( "infer",
        [
          Alcotest.test_case "templates inferred" `Quick test_infer_templates;
          Alcotest.test_case "cross-stimulus falsification" `Quick
            test_falsification_across_stimuli;
          Alcotest.test_case "survivors filter" `Quick
            test_survivors_drop_false_candidate;
          Alcotest.test_case "round-robin cap" `Quick test_cap_round_robin;
        ] );
      ( "inject",
        [
          Alcotest.test_case "round-trip" `Quick test_inject_roundtrip;
          Alcotest.test_case "out-of-scope rejected" `Quick
            test_inject_out_of_scope;
        ] );
      ( "rank",
        [
          Alcotest.test_case "deterministic" `Quick test_rank_deterministic;
          Alcotest.test_case "fir acceptance" `Quick test_rank_fir_acceptance;
          Alcotest.test_case "failing base rejected" `Quick
            test_rank_rejects_failing_base;
        ] );
    ]
