(* The serve subsystem: Job/Report codec round-trips, protocol
   tolerance (unknown fields in, version mismatches rejected with a
   diagnostic), scheduler-vs-library equivalence, and the daemon's
   survival contract over a real Unix socket (malformed requests,
   mid-job client disconnects, warm-cache resubmission). *)

module Job = Core.Job
module Report = Core.Report

let fir_source () = Apps.Fir_src.source ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- generators ----------------------------------------------------------- *)

let gen_name =
  QCheck.Gen.oneofl
    [ "in"; "out"; "acc"; "a b"; "q\"uote"; "back\\slash"; "new\nline"; "tab\there" ]

let gen_i64 =
  QCheck.Gen.(
    frequency
      [
        (8, map Int64.of_int small_signed_int);
        (1, return Int64.min_int);
        (1, return Int64.max_int);
      ])

let gen_source =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Job.Path s) gen_name;
        map2 (fun name text -> Job.Text { name; text }) gen_name gen_name;
      ])

let gen_stimulus =
  QCheck.Gen.(
    let feed key = map (fun vs -> (key, vs)) (small_list gen_i64) in
    let params key = map (fun kvs -> (key, kvs)) (small_list (pair gen_name gen_i64)) in
    (* distinct outer keys: duplicate stream names would collapse in a
       JSON object *)
    map3
      (fun feeds drains params -> { Job.feeds; drains; params })
      (oneof [ return []; map (fun f -> [ f ]) (feed "s1");
               map2 (fun a b -> [ a; b ]) (feed "s1") (feed "s2") ])
      (small_list gen_name)
      (oneof [ return []; map (fun p -> [ p ]) (params "p1");
               map2 (fun a b -> [ a; b ]) (params "p1") (params "p2") ]))

let gen_job =
  QCheck.Gen.(
    let opt g = oneof [ return None; map (fun v -> Some v) g ] in
    oneof
      [
        map3
          (fun s strat (a, b, c) ->
            Job.Compile
              {
                Job.c_source = s; c_strategy = strat; c_nabort = a; c_ndebug = b;
                c_prune_proved = c; c_prune_induction = 0;
              })
          gen_source gen_name (triple bool bool bool);
        map3
          (fun srcs (strat, only, ign) ((a, b), w) ->
            Job.Check
              {
                Job.k_sources = srcs; k_strategy = strat; k_nabort = a; k_ndebug = b;
                k_only = only; k_ignore = ign; k_watchdog = w;
              })
          (small_list gen_source)
          (triple gen_name (opt (small_list gen_name)) (opt (small_list gen_name)))
          (pair (pair bool bool) (opt small_nat))
        |> map (fun j -> j);
        map3
          (fun srcs (d, i, c) (a, j) ->
            Job.Prove
              {
                Job.p_sources = srcs; p_depth = d; p_induction = i; p_assertion = a;
                p_conflict_limit = c; p_jobs = j;
              })
          (small_list gen_source) (triple small_nat small_nat small_nat)
          (pair (opt small_nat) (opt small_nat));
        map3
          (fun src st ((b, w, m, j), ((fr, mc), ph)) ->
            Job.Campaign
              {
                Job.a_source = src; a_stimulus = st; a_budget = b; a_watchdog = w;
                a_max_mutants = m; a_jobs = j; a_from_reset = fr; a_max_cycles = mc;
                a_prune_hangs = ph;
              })
          (opt gen_source) gen_stimulus
          (pair
             (quad (opt small_nat) (opt small_nat) (opt small_nat) (opt small_nat))
             (pair (pair bool small_nat) bool));
        map3
          (fun (src, strat) st ((t, c), (m, b, j, e)) ->
            Job.Mine
              {
                Job.m_source = src; m_strategy = strat; m_stimulus = st; m_top = t;
                m_max_candidates = c; m_max_mutants = m; m_budget = b; m_jobs = j;
                m_emit = e;
              })
          (pair gen_source gen_name) gen_stimulus
          (pair (pair small_nat small_nat)
             (quad (opt small_nat) (opt small_nat) (opt small_nat) bool));
        map3
          (fun seed (c, f, mc, w) (bd, cd, j) ->
            Job.Fuzz
              {
                Job.z_seed = seed; z_count = c; z_fuel = f; z_max_cycles = mc;
                z_watchdog = w; z_bmc_depth = bd; z_corpus_dir = cd; z_jobs = j;
              })
          gen_i64
          (quad (opt small_nat) (opt small_nat) (opt small_nat) (opt small_nat))
          (triple (opt small_nat) (opt gen_name) (opt small_nat));
      ])

let rec gen_json n =
  QCheck.Gen.(
    if n = 0 then
      oneof
        [ return Json.Null; map (fun b -> Json.Bool b) bool; map Json.i64 gen_i64;
          map Json.str gen_name ]
    else
      oneof
        [
          gen_json 0;
          map (fun l -> Json.List l) (list_size (int_bound 3) (gen_json (n - 1)));
          map
            (fun l -> Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
            (list_size (int_bound 3) (gen_json (n - 1)));
        ])

let gen_report =
  QCheck.Gen.(
    map3
      (fun kind (code, err) payload ->
        { Report.kind; exit_code = code; payload; error = err })
      (oneofl [ "compile"; "check"; "prove"; "campaign"; "mine"; "fuzz" ])
      (pair (int_bound 3) (oneof [ return None; map (fun m -> Some m) gen_name ]))
      (gen_json 2))

(* --- codec round-trips ----------------------------------------------------- *)

let job_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Job.of_json (Job.to_json j) = Ok j"
    (QCheck.make gen_job)
    (fun j -> Job.of_json (Job.to_json j) = Ok j)

let job_roundtrip_via_text =
  QCheck.Test.make ~count:300 ~name:"job codec survives print+parse"
    (QCheck.make gen_job)
    (fun j ->
      match Json.parse (Json.to_string (Job.to_json j)) with
      | Ok j' -> Job.of_json j' = Ok j
      | Error _ -> false)

let report_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Report.of_string (Report.to_string r) = Ok r"
    (QCheck.make gen_report)
    (fun r -> Report.of_string (Report.to_string r) = Ok r)

let test_unknown_fields_tolerated () =
  let j =
    Json.Obj
      [
        ("kind", Json.str "fuzz");
        ("seed", Json.int 7);
        ("some_future_field", Json.str "ignored");
        ("another", Json.List [ Json.int 1 ]);
      ]
  in
  (match Job.of_json j with
  | Ok (Job.Fuzz z) -> Alcotest.(check int64) "seed kept" 7L z.Job.z_seed
  | Ok _ -> Alcotest.fail "decoded to the wrong kind"
  | Error e -> Alcotest.fail ("unknown fields rejected: " ^ e));
  (* the event decoder tolerates unknown fields too *)
  let line =
    {|{"schema_version": 1, "id": "x", "event": "progress", "seq": 3, "label": "l", "data": null, "extra": true}|}
  in
  match Serve.Proto.decode_event line with
  | Ok (id, Serve.Proto.Progress p) ->
      Alcotest.(check string) "id" "x" id;
      Alcotest.(check int) "seq" 3 p.seq
  | _ -> Alcotest.fail "progress event with extra field rejected"

let test_version_mismatch_rejected () =
  let req =
    Json.Obj
      [
        ("schema_version", Json.int 99);
        ("id", Json.str "r1");
        ("job", Json.Obj [ ("kind", Json.str "fuzz") ]);
      ]
  in
  (match Serve.Proto.decode_request req with
  | Error m ->
      Alcotest.(check bool)
        "diagnostic names the versions" true
        (contains ~sub:"schema_version mismatch" m
         || (String.length m >= 22 && String.sub m 0 22 = "schema_version mismatc"))
  | Ok _ -> Alcotest.fail "version 99 accepted");
  (* envelope form requires the version *)
  (match
     Serve.Proto.decode_request
       (Json.Obj [ ("job", Json.Obj [ ("kind", Json.str "fuzz") ]) ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "envelope without schema_version accepted");
  (* report envelopes too *)
  match Report.of_string {|{"schema_version": 2, "kind": "check", "report": {}}|} with
  | Error m ->
      Alcotest.(check bool)
        "mentions schema_version" true
        (String.length m > 0 && String.sub m 0 14 = "schema_version")
  | Ok _ -> Alcotest.fail "future report version accepted"

let test_bare_job_request () =
  let j =
    Json.Obj
      [
        ("kind", Json.str "check");
        ("sources", Json.List [ Json.Obj [ ("path", Json.str "x.c") ] ]);
      ]
  in
  match Serve.Proto.decode_request j with
  | Ok r ->
      Alcotest.(check string) "default id" "-" r.Serve.Proto.req_id;
      Alcotest.(check string) "kind" "check" (Job.kind r.Serve.Proto.req_job)
  | Error e -> Alcotest.fail e

(* --- scheduler ------------------------------------------------------------- *)

let campaign_job ~jobs =
  Job.Campaign
    {
      Job.a_source = Some (Job.Text { name = "fir.c"; text = fir_source () });
      a_stimulus = Job.empty_stimulus;
      a_budget = None;
      a_watchdog = None;
      a_max_mutants = Some 6;
      a_jobs = jobs;
      a_from_reset = false;
      a_max_cycles = 1_000_000;
      a_prune_hangs = true;
    }

(* the scheduled campaign payload is byte-for-byte the library's own
   report JSON, and sharding doesn't change it *)
let test_sched_campaign_matches_library () =
  let prog = Front.Typecheck.parse_and_check ~file:"fir.c" (fir_source ()) in
  let o = Mine.Trace.auto_options prog in
  let workloads =
    [
      {
        Campaign.wname = "fir";
        program = prog;
        options =
          {
            Core.Driver.default_sim_options with
            Core.Driver.feeds = o.Core.Driver.feeds;
            drains = o.Core.Driver.drains;
            params = o.Core.Driver.params;
            max_cycles = 1_000_000;
          };
      };
    ]
  in
  let config =
    { Campaign.default_config with Campaign.max_mutants = Some 6; jobs = Some 2 }
  in
  let direct = Campaign.run ~config workloads in
  let events = ref [] in
  let sched =
    Serve.Sched.run
      ~progress:(fun ~label ~data:_ -> events := label :: !events)
      (campaign_job ~jobs:(Some 2))
  in
  let serial = Serve.Sched.run (campaign_job ~jobs:(Some 1)) in
  Alcotest.(check string)
    "payload = Campaign.json_of"
    (Json.to_string (Campaign.json_of direct))
    (Json.to_string sched.Serve.Sched.sc_report.Report.payload);
  Alcotest.(check string)
    "sharded = serial"
    (Report.to_string serial.Serve.Sched.sc_report)
    (Report.to_string sched.Serve.Sched.sc_report);
  Alcotest.(check int)
    "one progress event per mutant run"
    (List.length direct.Campaign.runs)
    (List.length !events)

(* a certainly-deadlocking two-process design (the examples/deadlock.c
   shape): INCA-L106 error, used to exercise the check code filters *)
let starved_source =
  "stream int32 a depth 4;\n\
   stream int32 b depth 4;\n\
   process hw prod() {\n\
  \  int32 i;\n\
  \  for (i = 0; i < 8; i = i + 1) {\n\
  \    stream_write(a, i);\n\
  \  }\n\
   }\n\
   process hw cons() {\n\
  \  int32 i;\n\
  \  for (i = 0; i < 9; i = i + 1) {\n\
  \    int32 x;\n\
  \    x = stream_read(a);\n\
  \    stream_write(b, x);\n\
  \  }\n\
   }\n"

let filtered_check_job ~only ~ignore_ =
  Job.Check
    {
      Job.k_sources =
        [
          Job.Text { name = "fir.c"; text = fir_source () };
          Job.Text { name = "starved.c"; text = starved_source };
        ];
      k_strategy = "optimized";
      k_nabort = false;
      k_ndebug = false;
      k_only = only;
      k_ignore = ignore_;
      k_watchdog = None;
    }

let test_sched_check_filters_and_determinism () =
  let run job = Serve.Sched.run job in
  let unfiltered = run (filtered_check_job ~only:None ~ignore_:None) in
  Alcotest.(check int) "deadlock fails the check" 1
    unfiltered.Serve.Sched.sc_report.Report.exit_code;
  (* the scheduled check is deterministic: identical text and envelope
     on every run *)
  let again = run (filtered_check_job ~only:None ~ignore_:None) in
  Alcotest.(check string) "rendered text is byte-identical"
    unfiltered.Serve.Sched.sc_text again.Serve.Sched.sc_text;
  Alcotest.(check string) "report envelope is byte-identical"
    (Report.to_string unfiltered.Serve.Sched.sc_report)
    (Report.to_string again.Serve.Sched.sc_report);
  (* --only the liveness family: still fails (L106 is kept), and no
     other code appears in the rendered output *)
  let only =
    run (filtered_check_job ~only:(Some [ "INCA-L106"; "INCA-L107" ]) ~ignore_:None)
  in
  Alcotest.(check int) "liveness-only leg still fails" 1
    only.Serve.Sched.sc_report.Report.exit_code;
  Alcotest.(check bool) "L106 survives --only" true
    (contains ~sub:"INCA-L106" only.Serve.Sched.sc_text);
  Alcotest.(check bool) "L103 filtered by --only" false
    (contains ~sub:"INCA-L103" only.Serve.Sched.sc_text);
  (* --ignore the deadlock code: the error disappears and check passes *)
  let ignored =
    run (filtered_check_job ~only:None ~ignore_:(Some [ "INCA-L106" ]))
  in
  Alcotest.(check int) "ignoring the deadlock code passes" 0
    ignored.Serve.Sched.sc_report.Report.exit_code;
  Alcotest.(check bool) "L106 dropped by --ignore" false
    (contains ~sub:"INCA-L106" ignored.Serve.Sched.sc_text)

let test_sched_failures_are_reports () =
  (* missing file: a failure report, not an exception *)
  let o =
    Serve.Sched.run
      (Job.Compile
         {
           Job.c_source = Job.Path "/nonexistent/nope.c";
           c_strategy = "optimized";
           c_nabort = false;
           c_ndebug = false;
           c_prune_proved = false;
           c_prune_induction = 0;
         })
  in
  Alcotest.(check bool) "nonzero exit" true (o.Serve.Sched.sc_report.Report.exit_code <> 0);
  Alcotest.(check bool) "error set" true (o.Serve.Sched.sc_report.Report.error <> None);
  (* and the envelope still serializes with schema_version + error *)
  let s = Report.to_string o.Serve.Sched.sc_report in
  Alcotest.(check bool) "has schema_version" true
    (contains ~sub:"\"schema_version\"" s);
  Alcotest.(check bool) "has error" true (contains ~sub:"\"error\"" s);
  (* unknown strategy: a usage error, exit 1 *)
  let o =
    Serve.Sched.run
      (Job.Mine
         {
           Job.m_source = Job.Text { name = "t.c"; text = fir_source () };
           m_strategy = "warp-speed";
           m_stimulus = Job.empty_stimulus;
           m_top = 3;
           m_max_candidates = 2;
           m_max_mutants = Some 2;
           m_budget = None;
           m_jobs = Some 1;
           m_emit = false;
         })
  in
  Alcotest.(check int) "usage exit 1" 1 o.Serve.Sched.sc_report.Report.exit_code

(* --- the daemon over a real socket ----------------------------------------- *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "inca-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let check_job =
  Job.Check
    {
      Job.k_sources = [ Job.Text { name = "fir.c"; text = fir_source () } ];
      k_strategy = "optimized";
      k_nabort = false;
      k_ndebug = false;
      k_only = None;
      k_ignore = None;
      k_watchdog = None;
    }

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd line =
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s))

let raw_read_line fd =
  let b = Buffer.create 256 in
  let c = Bytes.create 1 in
  let rec go () =
    match Unix.read fd c 0 1 with
    | 0 -> Buffer.contents b
    | _ ->
        if Bytes.get c 0 = '\n' then Buffer.contents b
        else begin
          Buffer.add_char b (Bytes.get c 0);
          go ()
        end
  in
  go ()

let test_daemon_end_to_end () =
  let socket = fresh_socket () in
  let t = Serve.Server.start ~socket () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists socket then Serve.Server.stop t)
  @@ fun () ->
  (* a well-formed job comes back as a report *)
  (match Serve.Server.request ~socket check_job with
  | Ok (rep, _) ->
      Alcotest.(check string) "kind" "check" rep.Report.kind;
      Alcotest.(check int) "exit 0" 0 rep.Report.exit_code
  | Error e -> Alcotest.fail e);
  (* a malformed line gets an error event and the daemon survives *)
  let fd = raw_connect socket in
  raw_send fd "this is not json";
  let line = raw_read_line fd in
  Unix.close fd;
  (match Serve.Proto.decode_event line with
  | Ok (_, Serve.Proto.Failed _) -> ()
  | _ -> Alcotest.fail ("expected an error event, got: " ^ line));
  (* a client that vanishes mid-job doesn't kill the daemon or the job *)
  let fd = raw_connect socket in
  raw_send fd
    (Json.to_string
       (Json.Obj
          [
            ("schema_version", Json.int Report.schema_version);
            ("job", Job.to_json check_job);
          ]));
  Unix.close fd;
  (* an undecodable request (bad version) also gets a diagnostic *)
  let fd = raw_connect socket in
  raw_send fd {|{"schema_version": 42, "id": "v", "job": {"kind": "fuzz"}}|};
  let line = raw_read_line fd in
  Unix.close fd;
  (match Serve.Proto.decode_event line with
  | Ok (id, Serve.Proto.Failed f) ->
      Alcotest.(check string) "id echoed" "v" id;
      Alcotest.(check bool) "names the mismatch" true
        (contains ~sub:"schema_version mismatch" f.message)
  | _ -> Alcotest.fail ("expected an error event, got: " ^ line));
  (* still alive: same job again, warm this time *)
  (match Serve.Server.request ~socket check_job with
  | Ok (rep, cache) ->
      Alcotest.(check int) "exit 0 after abuse" 0 rep.Report.exit_code;
      Alcotest.(check bool) "warm cache hit" true
        (cache.Serve.Proto.cd_memory_hits + cache.Serve.Proto.cd_disk_hits > 0)
  | Error e -> Alcotest.fail e);
  Serve.Server.stop t;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let test_daemon_campaign_identical_and_warm () =
  let socket = fresh_socket () in
  let t = Serve.Server.start ~socket () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists socket then Serve.Server.stop t)
  @@ fun () ->
  let progress = ref 0 in
  let first =
    Serve.Server.request ~socket
      ~on_progress:(fun ~seq:_ ~label:_ ~data:_ -> incr progress)
      (campaign_job ~jobs:None)
  in
  let second = Serve.Server.request ~socket (campaign_job ~jobs:None) in
  (match (first, second) with
  | Ok (r1, _), Ok (r2, cache) ->
      Alcotest.(check string) "resubmission byte-identical" (Report.to_string r1)
        (Report.to_string r2);
      Alcotest.(check bool) "progress streamed" true (!progress > 0);
      Alcotest.(check bool) "second submission warm" true
        (cache.Serve.Proto.cd_memory_hits + cache.Serve.Proto.cd_disk_hits > 0)
  | Error e, _ | _, Error e -> Alcotest.fail e);
  Serve.Server.stop t

let test_stale_socket_reclaimed () =
  let socket = fresh_socket () in
  (* leave a dead socket file behind *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists socket);
  let t = Serve.Server.start ~socket () in
  (match Serve.Server.request ~socket check_job with
  | Ok (rep, _) -> Alcotest.(check int) "served over reclaimed socket" 0 rep.Report.exit_code
  | Error e -> Alcotest.fail e);
  Serve.Server.stop t

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest job_roundtrip;
          QCheck_alcotest.to_alcotest job_roundtrip_via_text;
          QCheck_alcotest.to_alcotest report_roundtrip;
          Alcotest.test_case "unknown fields tolerated" `Quick
            test_unknown_fields_tolerated;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "bare job request form" `Quick test_bare_job_request;
        ] );
      ( "sched",
        [
          Alcotest.test_case "campaign payload = library report" `Quick
            test_sched_campaign_matches_library;
          Alcotest.test_case "check filters + determinism" `Quick
            test_sched_check_filters_and_determinism;
          Alcotest.test_case "failures are reports" `Quick
            test_sched_failures_are_reports;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end over a socket" `Quick test_daemon_end_to_end;
          Alcotest.test_case "campaign identical + warm resubmit" `Quick
            test_daemon_campaign_identical_and_warm;
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_stale_socket_reclaimed;
        ] );
    ]
