(* Cycle-accurate simulator tests: FIFO/BRAM models, engine semantics,
   pipelined loops, hang detection, checkers — and the central
   equivalence property: the circuit computes exactly what the software
   interpreter computes (when no fault is injected). *)

open Front
module Ir = Mir.Ir
module Engine = Sim.Engine
module Fifo = Sim.Fifo
module Bram = Sim.Bram

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let elab = Typecheck.parse_and_check ~file:"test.c"

(* naive substring replace (first occurrence) *)
let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
  | None -> s

(* --- Fifo -------------------------------------------------------------------- *)

let test_fifo_visibility () =
  let f = Fifo.create ~name:"t" ~depth:4 in
  Fifo.push f 1L;
  check tbool "staged value not yet visible" false (Fifo.can_pop f);
  Fifo.commit f;
  check tbool "visible after commit" true (Fifo.can_pop f);
  check tbool "pop" true (Fifo.pop f = 1L)

let test_fifo_capacity () =
  let f = Fifo.create ~name:"t" ~depth:2 in
  Fifo.push f 1L;
  Fifo.push f 2L;
  check tbool "full counts staged" false (Fifo.can_push f);
  Fifo.commit f;
  check tbool "still full" false (Fifo.can_push f);
  ignore (Fifo.pop f);
  check tbool "space after pop" true (Fifo.can_push f)

let test_fifo_stats () =
  let f = Fifo.create ~name:"t" ~depth:8 in
  List.iter (fun v -> Fifo.push f v) [ 1L; 2L; 3L ];
  Fifo.commit f;
  ignore (Fifo.pop f);
  check tint "pushes" 3 f.Fifo.pushes;
  check tint "pops" 1 f.Fifo.pops;
  check tint "max occupancy" 3 f.Fifo.max_occupancy

let fifo_order_prop =
  QCheck.Test.make ~count:200 ~name:"fifo preserves order across commits"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) int64)
    (fun values ->
      let f = Fifo.create ~name:"t" ~depth:1000 in
      List.iter
        (fun v ->
          Fifo.push f v;
          Fifo.commit f)
        values;
      let out = ref [] in
      while Fifo.can_pop f do
        out := Fifo.pop f :: !out
      done;
      List.rev !out = values)

(* --- Bram -------------------------------------------------------------------- *)

let test_bram_rdw_old_data () =
  let b = Bram.create ~name:"m" ~length:8 ~ports:2 () in
  Bram.poke b 3 10L;
  Bram.write b 3L 99L;
  check tbool "read during write returns old data" true (Bram.read b 3L = 10L);
  Bram.commit b;
  check tbool "new data after commit" true (Bram.read b 3L = 99L)

let test_bram_address_wrap () =
  let b = Bram.create ~name:"m" ~length:6 ~ports:1 () in
  (* physical array is 8 deep; address -1 wraps to 7 (padding) *)
  Bram.write b (-1L) 42L;
  Bram.commit b;
  check tbool "wild write hit padding" true (Bram.peek b 7 = 42L);
  check tbool "wild accesses counted" true (b.Bram.wild_accesses > 0)

let test_bram_port_accounting () =
  let b = Bram.create ~name:"m" ~length:8 ~ports:1 () in
  ignore (Bram.read b 0L);
  ignore (Bram.read b 1L);
  check tbool "violation recorded" true (b.Bram.port_violations > 0);
  Bram.commit b;
  ignore (Bram.read b 0L);
  check tint "counter resets per cycle" 1 b.Bram.accesses_this_cycle

let test_bram_init () =
  let b = Bram.create ~init:[ 5L; 6L; 7L ] ~name:"m" ~length:3 ~ports:1 () in
  check tbool "rom contents" true (Bram.peek b 0 = 5L && Bram.peek b 2 = 7L)

let test_bram_mirror_write_no_port () =
  let b = Bram.create ~name:"m" ~length:4 ~ports:1 () in
  Bram.mirror_write b 0L 1L;
  check tint "mirror write uses hidden port" 0 b.Bram.accesses_this_cycle

(* --- Engine basics -------------------------------------------------------------- *)

let compile src strategy = Core.Driver.compile ~strategy (elab src)

let run ?(feeds = []) ?(drains = []) ?(params = []) ?(hw_models = [])
    ?(max_cycles = 100_000) compiled =
  Core.Driver.simulate
    ~options:{ Core.Driver.feeds; drains; params; hw_models; max_cycles; timing_checks = []; trace = false; watchdog = None }
    compiled

(* --- Snapshot / restore --------------------------------------------------------- *)

(* A design exercising everything a snapshot must capture: a BRAM, a
   pipelined loop with in-flight iterations, stream state, and an
   assertion tap. *)
let snapshot_src =
  {| stream int32 inp depth 8; stream int32 out depth 8;
     process hw main(int32 n) {
       int32 acc[4];
       int32 i;
       #pragma pipeline
       for (i = 0; i < n; i = i + 1) {
         int32 x;
         x = stream_read(inp);
         assert(x < 1000);
         acc[i % 4] = acc[i % 4] + x;
         stream_write(out, acc[i % 4]);
       }
     } |}

let snapshot_options n =
  {
    Core.Driver.default_sim_options with
    Core.Driver.feeds = [ ("inp", List.init n (fun i -> Int64.of_int (i + 3))) ];
    drains = [ "out" ];
    params = [ ("main", [ ("n", Int64.of_int n) ]) ];
    max_cycles = 100_000;
  }

let same_result (a : Engine.result) (b : Engine.result) =
  a.Engine.outcome = b.Engine.outcome
  && a.Engine.cycles = b.Engine.cycles
  && a.Engine.drained = b.Engine.drained
  && a.Engine.fifo_stats = b.Engine.fifo_stats
  && a.Engine.tap_events = b.Engine.tap_events
  && a.Engine.host_log = b.Engine.host_log

let test_snapshot_restore_roundtrip () =
  let n = 24 in
  let c = compile snapshot_src Core.Driver.optimized in
  let options = snapshot_options n in
  let reference =
    let ses = Core.Driver.prepare ~options c in
    Engine.run ses.Core.Driver.ses_engine
  in
  check tbool "reference run finishes" true
    (reference.Engine.outcome = Engine.Finished);
  let mid = reference.Engine.cycles / 2 in
  let ses = Core.Driver.prepare ~options c in
  let e = ses.Core.Driver.ses_engine in
  check tbool "paused mid-run" true (Engine.run_until e ~cycle:mid = None);
  check tint "paused at the requested cycle" mid (Engine.current_cycle e);
  let snap = Engine.snapshot e in
  (* run the engine to completion, corrupting all post-[mid] state... *)
  let first = Engine.run e in
  check tbool "continuation equals the uninterrupted run" true
    (same_result reference first);
  (* ...then rewind and replay: every field must match again *)
  Engine.restore e snap;
  check tint "restore rewinds the clock" mid (Engine.current_cycle e);
  let second = Engine.run e in
  check tbool "replay after restore equals the uninterrupted run" true
    (same_result reference second)

let test_snapshot_is_deep () =
  let n = 16 in
  let c = compile snapshot_src Core.Driver.baseline in
  let options = snapshot_options n in
  let ses = Core.Driver.prepare ~options c in
  let e = ses.Core.Driver.ses_engine in
  ignore (Engine.run_until e ~cycle:5);
  let snap = Engine.snapshot e in
  (* mutating the live engine must not leak into the snapshot *)
  ignore (Engine.run e);
  Engine.restore e snap;
  check tint "snapshot unaffected by later simulation" 5 (Engine.current_cycle e);
  let r = Engine.run e in
  check tbool "replay still completes" true (r.Engine.outcome = Engine.Finished)

(* --- Engine basics (cont.) ------------------------------------------------------ *)

let test_engine_basic_dataflow () =
  let c =
    compile
      {| stream int32 inp depth 8; stream int32 out depth 8;
         process hw main() {
           int32 i;
           for (i = 0; i < 4; i = i + 1) {
             int32 x; x = stream_read(inp); stream_write(out, x * x);
           }
         } |}
      Core.Driver.baseline
  in
  let r = run c ~feeds:[ ("inp", [ 1L; 2L; 3L; 4L ]) ] ~drains:[ "out" ] in
  check tbool "finished" true (r.Core.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "squares" true
    (List.assoc "out" r.Core.Driver.engine.Engine.drained = [ 1L; 4L; 9L; 16L ])

let test_engine_multi_process_chain () =
  let c =
    compile
      {| stream int32 a depth 4; stream int32 b depth 4; stream int32 out depth 16;
         process hw p1(int32 n) {
           int32 i;
           for (i = 0; i < n; i = i + 1) { int32 v; v = stream_read(a); stream_write(b, v + 1); }
         }
         process hw p2(int32 n) {
           int32 i;
           for (i = 0; i < n; i = i + 1) { int32 v; v = stream_read(b); stream_write(out, v * 2); }
         } |}
      Core.Driver.baseline
  in
  let r =
    run c ~feeds:[ ("a", [ 1L; 2L; 3L ]) ] ~drains:[ "out" ]
      ~params:[ ("p1", [ ("n", 3L) ]); ("p2", [ ("n", 3L) ]) ]
  in
  check tbool "chained" true
    (List.assoc "out" r.Core.Driver.engine.Engine.drained = [ 4L; 6L; 8L ])

let test_engine_backpressure_hang () =
  let c =
    compile
      {| stream int32 nowhere depth 2;
         process hw main() {
           int32 i;
           for (i = 0; i < 8; i = i + 1) { stream_write(nowhere, i); }
         } |}
      Core.Driver.baseline
  in
  let r = run c in
  match r.Core.Driver.engine.Engine.outcome with
  | Engine.Hang [ ("main", _) ] -> ()
  | _ -> Alcotest.fail "expected hang"

let test_engine_extcall_latency () =
  let c =
    compile
      {| stream int32 out depth 8;
         extern int32 ext(int32) latency 5;
         process hw main() { int32 y; y = ext(6); stream_write(out, y); } |}
      Core.Driver.baseline
  in
  let r = run c ~drains:[ "out" ] ~hw_models:[ ("ext", fun vs -> Int64.mul 7L (List.hd vs)) ] in
  check tbool "result after wait states" true
    (List.assoc "out" r.Core.Driver.engine.Engine.drained = [ 42L ]);
  check tbool "latency respected" true (r.Core.Driver.engine.Engine.cycles >= 6)

let test_engine_division_by_zero_trap () =
  let c =
    compile
      {| stream int32 inp depth 4; stream int32 out depth 4;
         process hw main() { int32 x; x = stream_read(inp); stream_write(out, 10 / x); } |}
      Core.Driver.baseline
  in
  let r = run c ~feeds:[ ("inp", [ 0L ]) ] ~drains:[ "out" ] in
  match r.Core.Driver.engine.Engine.outcome with
  | Engine.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected a trap"

let test_engine_wild_address_is_silent () =
  (* Figure 3 behaviour: negative index wraps in hardware, no crash *)
  let c =
    compile
      {| stream int32 out depth 4;
         process hw main() {
           int32 a[6]; int32 i;
           i = 0 - 1;
           a[i] = 7;
           stream_write(out, a[2]);
         } |}
      Core.Driver.baseline
  in
  let r = run c ~drains:[ "out" ] in
  check tbool "no crash" true (r.Core.Driver.engine.Engine.outcome = Engine.Finished);
  (* index -1 wraps to physical address 7, which is padding beyond the
     6-element logical array *)
  check tbool "wild access recorded" true (r.Core.Driver.engine.Engine.wild_accesses <> [])

(* --- Pipelined loops ---------------------------------------------------------- *)

let test_pipe_throughput () =
  let c =
    compile
      {| stream int32 inp depth 16; stream int32 out depth 16;
         process hw main(int32 n) {
           int32 i;
           #pragma pipeline
           for (i = 0; i < n; i = i + 1) {
             int32 x; x = stream_read(inp); stream_write(out, x + 100);
           }
         } |}
      Core.Driver.baseline
  in
  let n = 32 in
  let r =
    run c
      ~feeds:[ ("inp", List.init n Int64.of_int) ]
      ~drains:[ "out" ]
      ~params:[ ("main", [ ("n", Int64.of_int n) ]) ]
  in
  let e = r.Core.Driver.engine in
  check tbool "data correct" true
    (List.assoc "out" e.Engine.drained = List.init n (fun i -> Int64.of_int (i + 100)));
  (match e.Engine.pipes with
  | [ p ] ->
      check tint "static ii 1" 1 p.Engine.ii_static;
      check tbool "measured ii 1" true (p.Engine.ii_measured < 1.05);
      check tint "issues" n p.Engine.issues
  | _ -> Alcotest.fail "expected one pipe");
  check tbool "near-linear cycles" true (e.Engine.cycles < n + 20)

let test_pipe_stall_on_empty_input () =
  let c =
    compile
      {| stream int32 inp depth 16; stream int32 out depth 16;
         process hw main(int32 n) {
           int32 i;
           #pragma pipeline
           for (i = 0; i < n; i = i + 1) {
             int32 x; x = stream_read(inp); stream_write(out, x);
           }
         } |}
      Core.Driver.baseline
  in
  let r =
    run c ~feeds:[ ("inp", [ 1L; 2L ]) ] ~drains:[ "out" ]
      ~params:[ ("main", [ ("n", 5L) ]) ]
  in
  (match r.Core.Driver.engine.Engine.outcome with
  | Engine.Hang _ -> ()
  | Engine.Finished -> Alcotest.fail "finished unexpectedly"
  | _ -> Alcotest.fail "unexpected outcome");
  (* rigid stall: iterations behind the starving read freeze too, so
     only a prefix of the fed values reaches the output *)
  let out = List.assoc "out" r.Core.Driver.engine.Engine.drained in
  check tbool "partial output is a prefix" true
    (List.length out < 5 && out = List.filteri (fun i _ -> i < List.length out) [ 1L; 2L ])

let test_pipe_guarded_write_skips () =
  let c =
    compile
      {| stream int32 inp depth 16; stream int32 evens depth 16; stream int32 out depth 16;
         process hw main(int32 n) {
           int32 i;
           #pragma pipeline
           for (i = 0; i < n; i = i + 1) {
             int32 x; x = stream_read(inp);
             if ((x & 1) == 0) { stream_write(evens, x); }
             stream_write(out, x);
           }
         } |}
      Core.Driver.baseline
  in
  let n = 8 in
  let r =
    run c
      ~feeds:[ ("inp", List.init n Int64.of_int) ]
      ~drains:[ "out"; "evens" ]
      ~params:[ ("main", [ ("n", Int64.of_int n) ]) ]
  in
  let e = r.Core.Driver.engine in
  check tbool "all forwarded" true (List.assoc "out" e.Engine.drained = List.init n Int64.of_int);
  check tbool "evens filtered" true (List.assoc "evens" e.Engine.drained = [ 0L; 2L; 4L; 6L ])

let test_pipe_memory_state_survives () =
  let c =
    compile
      {| stream int32 out depth 16;
         process hw main() {
           int32 a[8]; int32 i;
           #pragma pipeline
           for (i = 0; i < 8; i = i + 1) { a[i & 7] = i * 3; }
           stream_write(out, a[5]);
         } |}
      Core.Driver.baseline
  in
  let r = run c ~drains:[ "out" ] in
  check tbool "post-loop readback" true
    (List.assoc "out" r.Core.Driver.engine.Engine.drained = [ 15L ])

let test_pipe_loop_variable_final_value () =
  let c =
    compile
      {| stream int32 out depth 16;
         process hw main() {
           int32 i;
           #pragma pipeline
           for (i = 0; i < 6; i = i + 1) { int32 x; x = i; }
           stream_write(out, i);
         } |}
      Core.Driver.baseline
  in
  let r = run c ~drains:[ "out" ] in
  check tbool "i = 6 after the loop" true
    (List.assoc "out" r.Core.Driver.engine.Engine.drained = [ 6L ])

(* --- Checkers ------------------------------------------------------------------- *)

let test_checker_latency_delays_notification_only () =
  let src =
    {| stream int32 inp depth 16; stream int32 out depth 16;
       process hw main(int32 n) {
         int32 i;
         for (i = 0; i < n; i = i + 1) {
           int32 x; x = stream_read(inp);
           assert(x < 100);
           stream_write(out, x);
         }
       } |}
  in
  let strategy =
    { Core.Driver.parallelized with Core.Driver.checker_latency = Some 20; nabort = true }
  in
  let c = compile src strategy in
  let r =
    run c
      ~feeds:[ ("inp", [ 1L; 200L; 3L ]) ]
      ~drains:[ "out" ]
      ~params:[ ("main", [ ("n", 3L) ]) ]
  in
  let e = r.Core.Driver.engine in
  check tbool "data unaffected" true (List.assoc "out" e.Engine.drained = [ 1L; 200L; 3L ]);
  check tint "failure still reported" 1 (List.length r.Core.Driver.failed_assertions)

let test_tap_events_counted () =
  let c =
    compile
      {| stream int32 inp depth 16; stream int32 out depth 16;
         process hw main(int32 n) {
           int32 i;
           for (i = 0; i < n; i = i + 1) {
             int32 x; x = stream_read(inp);
             assert(x > 0);
             stream_write(out, x);
           }
         } |}
      Core.Driver.parallelized
  in
  let r =
    run c ~feeds:[ ("inp", [ 5L; 6L; 7L; 8L ]) ] ~drains:[ "out" ]
      ~params:[ ("main", [ ("n", 4L) ]) ]
  in
  check tint "one tap event per iteration" 4 r.Core.Driver.engine.Engine.tap_events

(* --- Timing assertions (paper Section 6 future work) ----------------------------- *)

(* Two assert(true) markers bracket the loop body; marker taps anchor
   cycle-budget checks. *)
let timed_src =
  {| stream int32 inp depth 16; stream int32 out depth 16;
     process hw main(int32 n) {
       int32 i;
       for (i = 0; i < n; i = i + 1) {
         assert(true);
         int32 x; x = stream_read(inp);
         stream_write(out, x);
         assert(true);
       }
     } |}

let run_timed ~checks ~feeds =
  let c = compile timed_src Core.Driver.parallelized in
  Core.Driver.simulate
    ~options:
      {
        Core.Driver.default_sim_options with
        Core.Driver.feeds = [ ("inp", feeds) ];
        drains = [ "out" ];
        params = [ ("main", [ ("n", 4L) ]) ];
        timing_checks = checks;
        max_cycles = 2_000;
      }
    c

let test_timing_check_passes () =
  let checks =
    [ { Engine.tc_name = "body"; from_tap = 0; to_tap = 1; budget = 10; soft = false } ]
  in
  let r = run_timed ~checks ~feeds:[ 1L; 2L; 3L; 4L ] in
  check tbool "finished" true (r.Core.Driver.engine.Engine.outcome = Engine.Finished);
  check tbool "no violations" true (r.Core.Driver.engine.Engine.timing_violations = [])

let test_timing_check_catches_stall () =
  (* starve the input: the body deadline expires while the read blocks *)
  let checks =
    [ { Engine.tc_name = "body"; from_tap = 0; to_tap = 1; budget = 10; soft = false } ]
  in
  let r = run_timed ~checks ~feeds:[ 1L; 2L ] in
  match r.Core.Driver.engine.Engine.outcome with
  | Engine.Aborted msg ->
      check tbool "names the timing assertion" true
        (replace_once ~sub:"timing assertion `body'" ~by:"" msg <> msg);
      check tbool "violation recorded" true
        (r.Core.Driver.engine.Engine.timing_violations <> [])
  | _ -> Alcotest.fail "expected a timing abort"

let test_timing_check_soft_records () =
  let checks =
    [ { Engine.tc_name = "body"; from_tap = 0; to_tap = 1; budget = 10; soft = true } ]
  in
  let r = run_timed ~checks ~feeds:[ 1L; 2L ] in
  (* soft check: the run still ends as a hang, violations recorded *)
  check tbool "not aborted by the check" true
    (match r.Core.Driver.engine.Engine.outcome with Engine.Aborted _ -> false | _ -> true);
  check tbool "violation recorded" true (r.Core.Driver.engine.Engine.timing_violations <> [])

let test_timing_self_interval () =
  (* from = to: checks the interval between consecutive iterations *)
  let checks =
    [ { Engine.tc_name = "iteration-rate"; from_tap = 0; to_tap = 0; budget = 15; soft = false } ]
  in
  let r = run_timed ~checks ~feeds:[ 1L; 2L; 3L; 4L ] in
  check tbool "steady iterations pass" true
    (r.Core.Driver.engine.Engine.outcome = Engine.Finished)

(* --- Waveform trace (the SignalTap/ChipScope view) -------------------------------- *)

let contains needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_vcd_structure () =
  let c =
    compile
      {| stream int32 inp depth 8; stream int32 out depth 8;
         process hw main(int32 n) {
           int32 i;
           for (i = 0; i < n; i = i + 1) {
             int32 x; x = stream_read(inp); stream_write(out, x + 1);
           }
         } |}
      Core.Driver.baseline
  in
  let r =
    Core.Driver.simulate
      ~options:
        {
          Core.Driver.default_sim_options with
          Core.Driver.feeds = [ ("inp", [ 7L; 8L ]) ];
          drains = [ "out" ];
          params = [ ("main", [ ("n", 2L) ]) ];
          trace = true;
        }
      c
  in
  match r.Core.Driver.engine.Engine.vcd with
  | None -> Alcotest.fail "expected a VCD dump"
  | Some vcd ->
      check tbool "declares the FSM state" true (contains "main.state" vcd);
      check tbool "declares source registers" true
        (contains "main.i" vcd && contains "main.x" vcd);
      check tbool "has timestamps" true (contains "#0" vcd);
      check tbool "enddefinitions" true (contains "$enddefinitions $end" vcd)

let test_vcd_change_compressed () =
  let tr = Sim.Trace.create () in
  let s = Sim.Trace.declare tr ~name:"sig" ~width:8 in
  Sim.Trace.sample tr s ~cycle:0 5L;
  Sim.Trace.sample tr s ~cycle:1 5L;  (* unchanged: no event *)
  Sim.Trace.sample tr s ~cycle:2 6L;
  check tint "two events only" 2 (Sim.Trace.num_samples tr);
  let vcd = Sim.Trace.to_vcd tr in
  check tbool "no #1 timestamp" false (contains "#1\n" vcd)

(* --- Shared-channel burst (round-robin collector, Section 3.3 extension) --------- *)

let test_shared_channel_burst_all_reported () =
  (* many simultaneous failures funnel through one shared channel; the
     round-robin retry delivers every one of them under NABORT *)
  let src =
    {| stream int32 inp depth 64;
       stream int32 out depth 64;
       process hw main(int32 n) {
         int32 i;
         for (i = 0; i < n; i = i + 1) {
           int32 x; x = stream_read(inp);
           assert(x > 10);
           assert(x > 20);
           assert(x > 30);
           stream_write(out, x);
         }
       } |}
  in
  let strategy =
    { Core.Driver.optimized with Core.Driver.share = `Shared 32; nabort = true }
  in
  let c = compile src strategy in
  let n = 6 in
  let r =
    run c
      ~feeds:[ ("inp", List.init n (fun _ -> 1L)) ]  (* every assertion fails *)
      ~drains:[ "out" ]
      ~params:[ ("main", [ ("n", Int64.of_int n) ]) ]
  in
  check tbool "finished under NABORT" true
    (r.Core.Driver.engine.Engine.outcome = Engine.Finished);
  check tint "every failure reported" (3 * n)
    (List.length r.Core.Driver.failed_assertions)

(* --- The equivalence property ----------------------------------------------------- *)

let gen_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "d" ] in
  let atom = oneof [ map string_of_int (int_range 0 200); var ] in
  let op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
  let rec expr n =
    if n = 0 then atom
    else
      frequency
        [
          (2, atom);
          ( 3,
            map3
              (fun a o b -> Printf.sprintf "(%s %s %s)" a o b)
              (expr (n - 1)) op (expr (n - 1)) );
        ]
  in
  let simple_stmt =
    oneof
      [
        map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var (expr 2);
        map2 (fun e1 e2 -> Printf.sprintf "m[(%s) & 7] = %s;" e1 e2) (expr 1) (expr 2);
        map2 (fun v e -> Printf.sprintf "%s = m[(%s) & 7];" v e) var (expr 1);
      ]
  in
  let stmt =
    frequency
      [
        (5, simple_stmt);
        ( 2,
          map3
            (fun e t f -> Printf.sprintf "if (%s > 50) { %s } else { %s }" e t f)
            (expr 2) simple_stmt simple_stmt );
        ( 1,
          map2
            (fun v body -> Printf.sprintf "for (%s = 0; %s < 4; %s = %s + 1) { %s }" v v v v body)
            (oneofl [ "i"; "j" ])
            simple_stmt );
      ]
  in
  map
    (fun stmts ->
      Printf.sprintf
        {| stream int32 inp depth 8; stream int32 out depth 64;
           process hw main() {
             int32 a; int32 b; int32 c; int32 d; int32 i; int32 j; int32 m[8];
             a = stream_read(inp); b = stream_read(inp); c = 7; d = 11;
             %s
             stream_write(out, a); stream_write(out, b);
             stream_write(out, c); stream_write(out, d);
             stream_write(out, m[3]);
           } |}
        (String.concat "\n" stmts))
    (list_size (int_range 1 10) stmt)

let circuit_matches_software =
  QCheck.Test.make ~count:120 ~name:"circuit output equals software simulation"
    (QCheck.make gen_program ~print:(fun s -> s))
    (fun src ->
      let prog = elab src in
      let feeds = [ ("inp", [ 123L; 77L ]) ] in
      let sw =
        Interp.run
          ~cfg:{ Interp.default_config with Interp.feeds; drains = [ "out" ] }
          prog
      in
      let compiled = Core.Driver.compile ~strategy:Core.Driver.baseline prog in
      let hw =
        Core.Driver.simulate
          ~options:{ Core.Driver.default_sim_options with Core.Driver.feeds; drains = [ "out" ] }
          compiled
      in
      match (sw.Interp.outcome, hw.Core.Driver.engine.Engine.outcome) with
      | Interp.Completed, Engine.Finished ->
          sw.Interp.drained = hw.Core.Driver.engine.Engine.drained
      | _ -> false)

let gen_pipelined_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b" ] in
  let atom = oneof [ map string_of_int (int_range 0 60); var; pure "x"; pure "i" ] in
  let op = oneofl [ "+"; "-"; "*"; "&"; "^" ] in
  let body_stmt =
    oneof
      [
        map2
          (fun v (a, o, b) -> Printf.sprintf "%s = %s %s %s;" v a o b)
          var (triple atom op atom);
        map
          (fun (a, o, b) -> Printf.sprintf "m[i & 7] = %s %s %s;" a o b)
          (triple atom op atom);
        map
          (fun (a, o, b) -> Printf.sprintf "b = m[(%s %s %s) & 7];" a o b)
          (triple atom op atom);
      ]
  in
  map
    (fun stmts ->
      Printf.sprintf
        {| stream int32 inp depth 16; stream int32 out depth 64;
           process hw main(int32 n) {
             int32 a; int32 b; int32 m[8]; int32 i;
             a = 1; b = 2;
             #pragma pipeline
             for (i = 0; i < n; i = i + 1) {
               int32 x;
               x = stream_read(inp);
               %s
               stream_write(out, x + b);
             }
             stream_write(out, a); stream_write(out, b); stream_write(out, m[2]);
           } |}
        (String.concat "\n" stmts))
    (list_size (int_range 1 5) body_stmt)

let pipelined_matches_software =
  QCheck.Test.make ~count:80 ~name:"pipelined circuit equals software simulation"
    (QCheck.make gen_pipelined_program ~print:(fun s -> s))
    (fun src ->
      let prog = elab src in
      let n = 12 in
      let feeds = [ ("inp", List.init n (fun i -> Int64.of_int (3 * i))) ] in
      let params = [ ("main", [ ("n", Int64.of_int n) ]) ] in
      let sw =
        Interp.run
          ~cfg:{ Interp.default_config with Interp.feeds; drains = [ "out" ]; params }
          prog
      in
      let compiled = Core.Driver.compile ~strategy:Core.Driver.baseline prog in
      let hw =
        Core.Driver.simulate
          ~options:
            { Core.Driver.default_sim_options with Core.Driver.feeds; drains = [ "out" ]; params }
          compiled
      in
      match (sw.Interp.outcome, hw.Core.Driver.engine.Engine.outcome) with
      | Interp.Completed, Engine.Finished ->
          sw.Interp.drained = hw.Core.Driver.engine.Engine.drained
      | _ -> false)

let assertions_transparent =
  QCheck.Test.make ~count:60 ~name:"assertion synthesis preserves passing-run data"
    (QCheck.make gen_program ~print:(fun s -> s))
    (fun src ->
      let src =
        replace_once ~sub:"stream_write(out, a);"
          ~by:"assert(c >= 0 || c < 0); stream_write(out, a);" src
      in
      let prog = elab src in
      let feeds = [ ("inp", [ 9L; 31L ]) ] in
      let opts =
        { Core.Driver.default_sim_options with Core.Driver.feeds; drains = [ "out" ] }
      in
      let outputs strategy =
        let c = Core.Driver.compile ~strategy prog in
        let r = Core.Driver.simulate ~options:opts c in
        (r.Core.Driver.engine.Engine.outcome, r.Core.Driver.engine.Engine.drained)
      in
      let base = outputs Core.Driver.baseline in
      let unopt = outputs Core.Driver.unoptimized in
      let opt = outputs Core.Driver.optimized in
      base = unopt && base = opt)

(* Under NABORT, every strategy must report the same set of failing
   assertion sites (notification *order* may differ with checker
   latency; the paper only promises delayed notification). *)
let strategies_agree_on_failures =
  QCheck.Test.make ~count:40 ~name:"strategies agree on the failing assertion set"
    QCheck.(pair (int_range 1 6) (small_list (int_range (-20) 120)))
    (fun (threshold, extra) ->
      let feeds = List.map Int64.of_int (25 :: -3 :: 77 :: extra) in
      let n = List.length feeds in
      let src =
        Printf.sprintf
          {| stream int32 inp depth 64; stream int32 out depth 64;
             process hw main(int32 n) {
               int32 i;
               for (i = 0; i < n; i = i + 1) {
                 int32 x; x = stream_read(inp);
                 assert(x > %d);
                 assert(x < 100);
                 stream_write(out, x);
               }
             } |}
          threshold
      in
      let prog = elab src in
      let failed strategy =
        let c = Core.Driver.compile ~strategy:{ strategy with Core.Driver.nabort = true } prog in
        let r =
          Core.Driver.simulate
            ~options:
              {
                Core.Driver.default_sim_options with
                Core.Driver.feeds = [ ("inp", feeds) ];
                drains = [ "out" ];
                params = [ ("main", [ ("n", Int64.of_int n) ]) ];
              }
            c
        in
        List.sort_uniq compare r.Core.Driver.failed_assertions
      in
      let u = failed Core.Driver.unoptimized in
      let p = failed Core.Driver.parallelized in
      let o = failed Core.Driver.optimized in
      u = p && p = o)

let () =
  Alcotest.run "sim"
    [
      ( "fifo",
        [
          Alcotest.test_case "registered visibility" `Quick test_fifo_visibility;
          Alcotest.test_case "capacity" `Quick test_fifo_capacity;
          Alcotest.test_case "stats" `Quick test_fifo_stats;
          QCheck_alcotest.to_alcotest fifo_order_prop;
        ] );
      ( "bram",
        [
          Alcotest.test_case "read-during-write old data" `Quick test_bram_rdw_old_data;
          Alcotest.test_case "address wrap" `Quick test_bram_address_wrap;
          Alcotest.test_case "port accounting" `Quick test_bram_port_accounting;
          Alcotest.test_case "ROM init" `Quick test_bram_init;
          Alcotest.test_case "mirror write port" `Quick test_bram_mirror_write_no_port;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restore round-trip" `Quick test_snapshot_restore_roundtrip;
          Alcotest.test_case "deep copy" `Quick test_snapshot_is_deep;
        ] );
      ( "engine",
        [
          Alcotest.test_case "basic dataflow" `Quick test_engine_basic_dataflow;
          Alcotest.test_case "process chain" `Quick test_engine_multi_process_chain;
          Alcotest.test_case "backpressure hang" `Quick test_engine_backpressure_hang;
          Alcotest.test_case "extcall latency" `Quick test_engine_extcall_latency;
          Alcotest.test_case "division trap" `Quick test_engine_division_by_zero_trap;
          Alcotest.test_case "wild address silent" `Quick test_engine_wild_address_is_silent;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "throughput" `Quick test_pipe_throughput;
          Alcotest.test_case "stall on empty input" `Quick test_pipe_stall_on_empty_input;
          Alcotest.test_case "guarded write skips" `Quick test_pipe_guarded_write_skips;
          Alcotest.test_case "memory survives" `Quick test_pipe_memory_state_survives;
          Alcotest.test_case "loop variable final" `Quick test_pipe_loop_variable_final_value;
        ] );
      ( "checkers",
        [
          Alcotest.test_case "latency only delays notification" `Quick
            test_checker_latency_delays_notification_only;
          Alcotest.test_case "tap events" `Quick test_tap_events_counted;
        ] );
      ( "timing",
        [
          Alcotest.test_case "within budget passes" `Quick test_timing_check_passes;
          Alcotest.test_case "stall caught" `Quick test_timing_check_catches_stall;
          Alcotest.test_case "soft mode records" `Quick test_timing_check_soft_records;
          Alcotest.test_case "self interval" `Quick test_timing_self_interval;
        ] );
      ( "trace",
        [
          Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
          Alcotest.test_case "change compression" `Quick test_vcd_change_compressed;
        ] );
      ( "shared-burst",
        [
          Alcotest.test_case "round-robin delivers all" `Quick
            test_shared_channel_burst_all_reported;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest circuit_matches_software;
          QCheck_alcotest.to_alcotest pipelined_matches_software;
          QCheck_alcotest.to_alcotest assertions_transparent;
          QCheck_alcotest.to_alcotest strategies_agree_on_failures;
        ] );
    ]
