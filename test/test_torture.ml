(* Torture-harness tests: generator determinism, the parse ∘ pretty
   fixpoint property, oracle agreement on clean seeds, shrinker
   determinism / divergence preservation / 1-minimality on a
   known-divergent configuration, corpus round-trip and replay of the
   checked-in reproducers, and byte-identical fuzz reports across job
   counts. *)

module Gen = Torture.Gen
module Oracle = Torture.Oracle
module Shrink = Torture.Shrink
module Corpus = Torture.Corpus
module Fuzz = Torture.Fuzz

let check = Alcotest.check
let tstr = Alcotest.string
let tbool = Alcotest.bool
let tint = Alcotest.int

let pretty = Front.Pretty.program_to_string
let reparse s = Front.Typecheck.parse_and_check s

(* The fault leg used by the bench harness and the shrinker tests:
   dropping p0's first write to chan1 starves the next pipeline stage, a
   deterministic translation bug every strategy's circuit exhibits. *)
let known_fault =
  [
    Faults.Fault.Drop_stream_write
      { fproc = "p0"; stream = "chan1"; select = Faults.Fault.Nth 0 };
  ]

let class_set (o : Oracle.outcome) =
  List.sort_uniq compare (List.map Oracle.class_key o.Oracle.divergences)

let gen i = Gen.generate ~seed:(Gen.program_seed ~run_seed:42L ~index:i) ~fuel:8

(* --- generator ------------------------------------------------------------ *)

let test_gen_deterministic () =
  for i = 0 to 9 do
    check tstr
      (Printf.sprintf "program %d regenerates byte-identically" i)
      (pretty (gen i)) (pretty (gen i))
  done;
  check tbool "distinct seeds give distinct programs" true
    (pretty (gen 0) <> pretty (gen 1))

let test_gen_well_typed () =
  (* every generated program survives its own print → parse → elaborate
     round trip — the generator's well-typedness contract *)
  for i = 0 to 49 do
    ignore (reparse (pretty (gen i)))
  done

(* --- pretty-printer round trip ------------------------------------------- *)

let test_pretty_fixpoint () =
  (* parse ∘ pretty is a fixpoint: printing the reparse of a printed
     program changes nothing.  Swept over three fuel levels so the
     property covers straight-line code, loop nests, and dense nests
     with casts, ROMs, and pipelined loops. *)
  List.iter
    (fun fuel ->
      for i = 0 to 99 do
        let p = Gen.generate ~seed:(Gen.program_seed ~run_seed:7L ~index:i) ~fuel in
        let s1 = pretty p in
        let s2 = pretty (reparse s1) in
        check tstr (Printf.sprintf "fixpoint (fuel %d, program %d)" fuel i) s1 s2
      done)
    [ 4; 8; 16 ]

(* --- oracle --------------------------------------------------------------- *)

let test_oracle_clean_agrees () =
  for i = 0 to 19 do
    let o = Oracle.check (gen i) in
    check tbool
      (Printf.sprintf "program %d agrees under every strategy" i)
      true (Oracle.agrees o)
  done

let test_oracle_catches_fault () =
  let o = Oracle.check ~faults:known_fault (gen 0) in
  check tbool "injected fault diverges" false (Oracle.agrees o);
  List.iter
    (fun k ->
      check tbool (k ^ " is a hang") true
        (String.length k >= 5 && String.sub k 0 5 = "hang:"))
    (class_set o)

(* --- shrinker ------------------------------------------------------------- *)

let divergent_base () =
  let prog = gen 0 in
  let o = Oracle.check ~faults:known_fault prog in
  let classes = class_set o in
  check tbool "base program diverges" true (classes <> []);
  let keep cand =
    class_set (Oracle.check ~faults:known_fault cand) = classes
  in
  (prog, classes, keep)

let test_shrink_deterministic () =
  let prog, _, keep = divergent_base () in
  let s1, st1 = Shrink.shrink ~keep prog in
  let s2, st2 = Shrink.shrink ~keep prog in
  check tstr "shrunk program is stable across runs" (pretty s1) (pretty s2);
  check tint "attempt count is stable" st1.Shrink.attempts st2.Shrink.attempts;
  check tbool "shrinking made progress" true
    (st1.Shrink.min_lines < st1.Shrink.orig_lines);
  check tbool "reproducer fits the corpus budget" true (st1.Shrink.min_lines <= 25)

let test_shrink_preserves_divergence () =
  let _, classes, keep = divergent_base () in
  let prog, _, _ = divergent_base () in
  let shrunk, _ = Shrink.shrink ~keep prog in
  check tbool "shrunk program still diverges with the same classes" true
    (class_set (Oracle.check ~faults:known_fault shrunk) = classes)

let test_shrink_one_minimal () =
  let prog, classes, keep = divergent_base () in
  let shrunk, stats = Shrink.shrink ~keep prog in
  check tbool "shrink ran to fixpoint, not out of budget" true
    (stats.Shrink.attempts < 20_000);
  (* 1-minimality over the deletion step: no single statement removal
     that still elaborates may keep the divergence *)
  let n = Shrink.count_stmts shrunk in
  check tbool "shrunk program is non-empty" true (n > 0);
  for i = 0 to n - 1 do
    match Shrink.delete_stmt shrunk i with
    | None -> ()
    | Some cand -> (
        match reparse (pretty cand) with
        | exception _ -> ()  (* deletion broke elaboration: not a candidate *)
        | p ->
            check tbool
              (Printf.sprintf "deleting statement %d kills the divergence" i)
              false
              (class_set (Oracle.check ~faults:known_fault p) = classes))
  done

(* --- corpus --------------------------------------------------------------- *)

let test_corpus_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "inca-corpus-test" in
  let entry =
    {
      Corpus.name = "roundtrip";
      classes = [ "hang:baseline"; "hang:optimized" ];
      seed = Some (-7L);
      fuel = Some 8;
      source = pretty (gen 0);
    }
  in
  let path = Corpus.save ~dir entry in
  let back = Corpus.load path in
  check tstr "name survives" entry.Corpus.name back.Corpus.name;
  check tbool "classes survive" true (entry.Corpus.classes = back.Corpus.classes);
  check tbool "seed survives" true (entry.Corpus.seed = back.Corpus.seed);
  check tbool "fuel survives" true (entry.Corpus.fuel = back.Corpus.fuel);
  check tstr "source survives" entry.Corpus.source back.Corpus.source;
  Sys.remove path

(* dune runtest runs tests from the test dir; dune exec from the root —
   probe both prefixes for the checked-in corpus *)
let corpus_dir () =
  List.find Sys.file_exists
    [
      Filename.concat ".." Corpus.default_dir;
      Corpus.default_dir;
      Filename.concat "../.." Corpus.default_dir;
    ]

let test_corpus_replay () =
  let files = Corpus.files (corpus_dir ()) in
  check tbool "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      match Corpus.replay path with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "regression: %s diverges again: %s"
            (Filename.basename path) msg)
    files

(* --- fuzz campaign -------------------------------------------------------- *)

let test_fuzz_byte_identical_across_jobs () =
  let run jobs = Json.to_string (Fuzz.json_of (Fuzz.run ~jobs ~seed:42L ~count:20 ())) in
  let serial = run 1 in
  check tstr "serial rerun is byte-identical" serial (run 1);
  check tstr "4-domain report is byte-identical to serial" serial (run 4)

let test_fuzz_fault_findings () =
  let r = Fuzz.run ~jobs:1 ~seed:42L ~count:3 ~faults:known_fault () in
  check tint "every program diverges under the injected fault" 3
    (List.length r.Fuzz.r_findings);
  List.iter
    (fun (f : Fuzz.finding) ->
      check tbool "finding was shrunk within the corpus budget" true
        (f.Fuzz.f_stats.Shrink.min_lines <= 25))
    r.Fuzz.r_findings;
  (* the findings feed the fault-injection campaign as workloads *)
  check tint "one workload per finding" 3 (List.length (Fuzz.workloads r))

let () =
  Alcotest.run "torture"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "well-typed" `Quick test_gen_well_typed;
        ] );
      ( "pretty",
        [ Alcotest.test_case "parse-pretty fixpoint" `Quick test_pretty_fixpoint ] );
      ( "oracle",
        [
          Alcotest.test_case "clean seeds agree" `Quick test_oracle_clean_agrees;
          Alcotest.test_case "injected fault diverges" `Quick test_oracle_catches_fault;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "deterministic" `Quick test_shrink_deterministic;
          Alcotest.test_case "preserves divergence" `Quick
            test_shrink_preserves_divergence;
          Alcotest.test_case "1-minimal" `Slow test_shrink_one_minimal;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "replay checked-in reproducers" `Quick
            test_corpus_replay;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_fuzz_byte_identical_across_jobs;
          Alcotest.test_case "fault findings shrunk and exported" `Quick
            test_fuzz_fault_findings;
        ] );
    ]
